package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"kbtim"
)

// gatedHandler simulates a backend process that is down: while !up every
// request gets a 503, which the router reads as an unreachable replica (the
// startup census force-opens its breaker, probes fail). Flipping up "brings
// the process back" on the same address — something a closed httptest server
// cannot do.
type gatedHandler struct {
	inner http.Handler
	up    atomic.Bool
}

func (h *gatedHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !h.up.Load() {
		http.Error(w, "backend down", http.StatusServiceUnavailable)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// replicatedCluster is the failover topology: a single-engine truth server
// plus a router over 2 shards x 2 replicas, both replicas of a shard
// serving the SAME engine (byte-identical files by construction). Replica 1
// of every shard sits behind a gate so tests can take it down and bring it
// back.
type replicatedCluster struct {
	single *httptest.Server
	router *httptest.Server
	fo     *fanout
	// replicas[shard][replica]; gates[shard] gates replicas[shard][1].
	replicas [][]*httptest.Server
	gates    []*gatedHandler
}

func fastBreaker() breakerConfig {
	// Near-zero backoff so tests can drive reprobeOnce without sleeping out
	// real jittered schedules.
	return breakerConfig{failures: 3, minBackoff: time.Millisecond, maxBackoff: 2 * time.Millisecond}
}

func startReplicatedCluster(t *testing.T, gate1Down bool) *replicatedCluster {
	t.Helper()
	const shards = 2
	ds, opts, rrPath, irrPath := shardedFixture(t, shards)
	c := &replicatedCluster{}

	be1, close1, err := openBackend(ds, opts, rrPath, irrPath, 1, kbtim.ShardHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { close1() })
	c.single = httptest.NewServer(NewServer(be1, 4).Handler())
	t.Cleanup(c.single.Close)

	groups := make([][]string, shards)
	for i := 0; i < shards; i++ {
		be, closeBE, err := openBackend(ds, opts,
			kbtim.ShardIndexPath(rrPath, i), kbtim.ShardIndexPath(irrPath, i), 1, kbtim.ShardHash, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { closeBE() })
		h := NewServer(be, 4).Handler()
		r0 := httptest.NewServer(h)
		t.Cleanup(r0.Close)
		gate := &gatedHandler{inner: h}
		gate.up.Store(!gate1Down)
		r1 := httptest.NewServer(gate)
		t.Cleanup(r1.Close)
		c.replicas = append(c.replicas, []*httptest.Server{r0, r1})
		c.gates = append(c.gates, gate)
		groups[i] = []string{r0.URL, r1.URL}
	}
	cfg := defaultFanoutConfig()
	cfg.mode = kbtim.ShardHash
	cfg.decBudget = 1 << 20
	cfg.queryPar = 2
	cfg.healthTTL = 0 // live verdicts; tests flip backends up and down
	cfg.breaker = fastBreaker()
	cfg.noProbeLoop = true // recovery is driven explicitly via reprobeOnce
	c.fo, err = openFanout(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.fo.Close() })
	c.router = httptest.NewServer(NewServer(c.fo, 4).Handler())
	t.Cleanup(c.router.Close)
	return c
}

// assertRouterParity runs the full query matrix against the router and the
// single-engine truth and requires byte-identical seeds, marginals, and
// spreads — the invariant failover must never bend.
func assertRouterParity(t *testing.T, c *replicatedCluster, phase string) {
	t.Helper()
	queries := []queryRequest{
		{Topics: []int{0}, K: 3},
		{Topics: []int{3}, K: 2},
		{Topics: []int{0, 1}, K: 3},
		{Topics: []int{2, 5, 7}, K: 4},
		{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 5},
	}
	for _, strategy := range []string{"rr", "irr"} {
		for _, q := range queries {
			q.Strategy = strategy
			want, resp := postQuery(t, c.single, q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: single %s %v: %v", phase, strategy, q.Topics, resp.Status)
			}
			got, resp := postQuery(t, c.router, q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: router %s %v: %v", phase, strategy, q.Topics, resp.Status)
			}
			if !reflect.DeepEqual(got.Seeds, want.Seeds) ||
				!reflect.DeepEqual(got.Marginals, want.Marginals) ||
				got.EstSpread != want.EstSpread || got.NumRRSets != want.NumRRSets {
				t.Fatalf("%s: router %s %v: (%v, %v, %v, %d) != single (%v, %v, %v, %d)",
					phase, strategy, q.Topics,
					got.Seeds, got.Marginals, got.EstSpread, got.NumRRSets,
					want.Seeds, want.Marginals, want.EstSpread, want.NumRRSets)
			}
		}
	}
}

func routerStats(t *testing.T, c *replicatedCluster) statsResponse {
	t.Helper()
	resp, err := http.Get(c.router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestRouterFailoverParity is the kill-a-replica invariant in-process: with
// 2 replicas per shard, killing one replica of EVERY shard mid-run leaves
// zero failed client queries, failovers > 0, and results byte-identical to
// a single engine.
func TestRouterFailoverParity(t *testing.T) {
	c := startReplicatedCluster(t, false)
	assertRouterParity(t, c, "healthy")

	// Kill replica 1 of every shard (hard close: connections refused).
	for _, g := range c.gates {
		g.up.Store(false)
	}
	for _, reps := range c.replicas {
		reps[1].Close()
	}
	assertRouterParity(t, c, "degraded")

	stats := routerStats(t, c)
	if stats.Failed != 0 {
		t.Fatalf("killing a replica failed %d client queries, want 0", stats.Failed)
	}
	if stats.Router == nil {
		t.Fatal("/stats has no router section")
	}
	if stats.Router.Failovers == 0 {
		t.Fatalf("no failovers counted after killing a replica: %+v", stats.Router)
	}
	if stats.Router.Retries == 0 {
		t.Fatal("no retries counted after killing a replica")
	}

	// The degraded-/healthz contract: every shard still has a live replica,
	// so the router must keep advertising healthy.
	resp, err := http.Get(c.router.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with one live replica per shard: %v, want 200", resp.Status)
	}

	// Enough consecutive failures must have opened the dead replicas'
	// breakers; drive a few more queries to be sure, then check.
	for i := 0; i < 3; i++ {
		assertRouterParity(t, c, "post-breaker")
	}
	stats = routerStats(t, c)
	if stats.Router.Degraded == 0 {
		t.Fatalf("dead replicas never tripped their breakers: %+v", stats.Router.Backends)
	}

	// Kill the OTHER replica of shard 0 too: that shard is now unservable
	// and /healthz must say so.
	c.replicas[0][0].Close()
	if resp, err = http.Get(c.router.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with a whole shard down: %v, want 503", resp.Status)
	}
}

// TestRouterDegradedStartupAndRecovery: a replica that is down when the
// router starts no longer aborts openFanout — the router starts degraded,
// serves correct results, and re-admits the replica (validated, breaker
// closed) once the probe loop sees it healthy again.
func TestRouterDegradedStartupAndRecovery(t *testing.T) {
	c := startReplicatedCluster(t, true) // replica 1 of every shard down at open
	stats := routerStats(t, c)
	if stats.Router.Degraded != 2 {
		t.Fatalf("degraded = %d at startup with 2 dead replicas, want 2", stats.Router.Degraded)
	}
	for _, b := range stats.Router.Backends {
		if b.Breaker == breakerClosed && !b.Validated {
			t.Fatalf("unvalidated replica %s has a closed breaker", b.URL)
		}
	}
	assertRouterParity(t, c, "degraded-start")

	// Bring the gated replicas back and drive the probe loop by hand until
	// they are re-admitted (validation + breaker close).
	for _, g := range c.gates {
		g.up.Store(true)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.fo.reprobeOnce()
		if routerStats(t, c).Router.Degraded == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never re-admitted: %+v", routerStats(t, c).Router.Backends)
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats = routerStats(t, c)
	for _, b := range stats.Router.Backends {
		if !b.Validated || b.Breaker != breakerClosed {
			t.Fatalf("re-admitted replica %s: validated=%v breaker=%q", b.URL, b.Validated, b.Breaker)
		}
	}
	assertRouterParity(t, c, "recovered")

	// A recovered replica must actually take traffic again: proxy co-located
	// queries until every replica of shard-owning groups has served some.
	for i := 0; i < 4; i++ {
		for w := 0; w < 8; w++ { // single keywords are always co-located on their owner
			if _, resp := postQuery(t, c.router, queryRequest{Topics: []int{w}, K: 2, Strategy: "irr"}); resp.StatusCode != http.StatusOK {
				t.Fatalf("post-recovery query on %d: %v", w, resp.Status)
			}
		}
	}
	for gi, g := range c.fo.groups {
		for ri, n := range g.nodes {
			if ri == 1 && n.proxied.Load() == 0 {
				t.Fatalf("recovered replica %d of shard %d never proxied a query", ri, gi)
			}
		}
	}
}

// TestRouterRefusesShardWithNoLiveReplica: degraded startup has a floor —
// a shard whose EVERY replica is down cannot be served at all, and
// openFanout must say so instead of starting a router that would fail its
// keyword subset.
func TestRouterRefusesShardWithNoLiveReplica(t *testing.T) {
	const shards = 2
	ds, opts, rrPath, irrPath := shardedFixture(t, shards)
	groups := make([][]string, shards)
	for i := 0; i < shards; i++ {
		be, closeBE, err := openBackend(ds, opts,
			kbtim.ShardIndexPath(rrPath, i), kbtim.ShardIndexPath(irrPath, i), 1, kbtim.ShardHash, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { closeBE() })
		srv := httptest.NewServer(NewServer(be, 4).Handler())
		if i == 0 {
			srv.Close() // shard 0: the only replica is dead
		} else {
			t.Cleanup(srv.Close)
		}
		groups[i] = []string{srv.URL}
	}
	cfg := defaultFanoutConfig()
	cfg.mode = kbtim.ShardHash
	cfg.proxyTimeout = 5 * time.Second
	cfg.noProbeLoop = true
	if _, err := openFanout(groups, cfg); err == nil {
		t.Fatal("openFanout started with a shard that has no live replica")
	}
}

// TestReplicateModeSkipsOpenBreakers pins the satellite fix: replicate-mode
// routing must rotate whole queries across AVAILABLE groups only, instead of
// round-robining onto a node it already knows is down.
func TestReplicateModeSkipsOpenBreakers(t *testing.T) {
	ds, opts, rrPath, irrPath := shardedFixture(t, 2)
	// Two single-replica groups, each serving the FULL index — the
	// replicate-mode topology (every group can answer any query).
	groups := make([][]string, 2)
	for i := 0; i < 2; i++ {
		be, closeBE, err := openBackend(ds, opts, rrPath, irrPath, 1, kbtim.ShardHash, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { closeBE() })
		srv := httptest.NewServer(NewServer(be, 4).Handler())
		t.Cleanup(srv.Close)
		groups[i] = []string{srv.URL}
	}
	cfg := defaultFanoutConfig()
	cfg.mode = kbtim.ShardReplicate
	cfg.breaker = fastBreaker()
	cfg.noProbeLoop = true
	fo, err := openFanout(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fo.Close() })

	// Healthy: rotation uses both groups.
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		for _, gi := range fo.involved([]int{1}) {
			seen[gi] = true
		}
	}
	if len(seen) != 2 {
		t.Fatalf("healthy replicate rotation used groups %v, want both", seen)
	}

	// Open group 0's breaker: every pick must land on group 1.
	fo.groups[0].nodes[0].brk.forceOpen(time.Now(), fo.brkCfg)
	for i := 0; i < 10; i++ {
		if gids := fo.involved([]int{1}); len(gids) != 1 || gids[0] != 1 {
			t.Fatalf("replicate rotation picked dead group on iteration %d: %v", i, gids)
		}
	}

	// All groups down: fail open — still pick exactly one group rather than
	// erroring before any replica is even tried.
	fo.groups[1].nodes[0].brk.forceOpen(time.Now(), fo.brkCfg)
	if gids := fo.involved([]int{1}); len(gids) != 1 {
		t.Fatalf("fail-open pick = %v, want exactly one group", gids)
	}
}
