package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"kbtim"
	"kbtim/internal/diskio"
	"kbtim/internal/objcache"
	"kbtim/internal/remote"
)

// backend is the query surface the server routes to: a single
// *kbtim.Engine, a *kbtim.Sharded multi-engine deployment, or a cross-node
// fanout router — the handlers are identical either way. Queries carry the
// request context, so a disconnected client cancels its in-flight query
// instead of burning a worker slot to completion.
// Both query methods take StreamOptions: batch responses are the zero-option
// case of the same call, so the served pipeline is anytime end to end.
type backend interface {
	QueryRRStreamCtx(context.Context, kbtim.Query, kbtim.StreamOptions) (*kbtim.Result, error)
	QueryIRRStreamCtx(context.Context, kbtim.Query, kbtim.StreamOptions) (*kbtim.Result, error)
	IndexedKeywords() []int
	CacheStats() (rr, irr diskio.CacheStats)
	DecodedCacheStats() (rr, irr objcache.Stats)
}

// shardStatser is the optional per-shard breakdown a sharded backend
// provides; /stats includes a shard section when the backend has one.
type shardStatser interface {
	NumShards() int
	Mode() kbtim.ShardMode
	ShardStats() []kbtim.ShardStat
}

// healthChecker is the optional deep health probe a backend provides;
// /healthz consults it (the fanout router checks every downstream node) and
// reports 503 with the failure instead of a bare ok.
type healthChecker interface {
	CheckHealth(ctx context.Context) error
}

// routerStatser is the optional cross-node breakdown the fanout router
// provides; /stats includes a router section (per-backend traffic, wire
// bytes, and each node's own /stats) when the backend has one.
type routerStatser interface {
	RouterStats(ctx context.Context) *routerStatsJSON
}

// Server exposes a query backend over HTTP/JSON. Query execution runs
// through a bounded worker pool: at most `workers` queries execute at once,
// additional requests wait in line (respecting request-context
// cancellation) rather than piling unbounded load onto the engines. (A
// sharded backend additionally bounds each shard's concurrency with its own
// per-shard pool.)
type Server struct {
	eng     backend
	sem     chan struct{}
	started time.Time

	// defaultDeadline, when nonzero, caps every query that does not carry its
	// own deadline_ms. Set before the listener starts; not synchronized.
	defaultDeadline time.Duration

	served          atomic.Int64 // queries answered successfully
	failed          atomic.Int64 // queries that reached an engine and errored
	rejected        atomic.Int64 // requests refused before dispatch (client errors)
	canceled        atomic.Int64 // clients that disconnected before an answer
	deadlinePartial atomic.Int64 // served queries cut short by an anytime deadline
	inflight        atomic.Int64
	totalNS         atomic.Int64 // summed service time of served queries
}

// NewServer wraps a backend with a pool of the given size (minimum 1).
func NewServer(eng backend, workers int) *Server {
	if workers < 1 {
		workers = 1
	}
	return &Server{
		eng:     eng,
		sem:     make(chan struct{}, workers),
		started: time.Now(),
	}
}

// SetDefaultDeadline makes every query without its own deadline_ms an
// anytime query with budget d (zero disables the default). A query that hits
// the deadline answers 200 with its best certified prefix and partial=true
// instead of erroring.
func (s *Server) SetDefaultDeadline(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.defaultDeadline = d
}

// Handler returns the route table. Backends that can serve raw index
// artifacts (a single Engine) additionally expose the cross-node fetch
// endpoint a fanout router reads through.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/keywords", s.handleKeywords)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if src, ok := s.eng.(remote.Source); ok {
		mux.Handle(remote.ArtifactPath, remote.NewHandler(src))
		mux.Handle(remote.BatchPath, remote.NewBatchHandler(src))
	}
	return mux
}

// queryRequest is the POST /query body.
type queryRequest struct {
	// Topics is the advertisement keyword set Q.T.
	Topics []int `json:"topics"`
	// K is the seed budget Q.k.
	K int `json:"k"`
	// Strategy selects the processing path: "irr" (default) or "rr".
	Strategy string `json:"strategy,omitempty"`
	// DeadlineMS, when positive, makes this an anytime query: after that many
	// milliseconds the reply is the best certified seed prefix so far, marked
	// partial=true, rather than an error. Zero means no deadline (or the
	// server's -deadline default, if one is configured).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ioJSON mirrors kbtim.IOStats for the wire.
type ioJSON struct {
	SequentialReads int64 `json:"sequential_reads"`
	RandomReads     int64 `json:"random_reads"`
	BytesRead       int64 `json:"bytes_read"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	DecodedHits     int64 `json:"decoded_hits"`
	DecodedMisses   int64 `json:"decoded_misses"`
}

// queryResponse is the POST /query reply. Marginals ride along so a fanout
// router's proxied fast path loses nothing against its local scatter path
// (and so parity across deployments is checkable over the wire).
type queryResponse struct {
	Strategy         string   `json:"strategy"`
	Seeds            []uint32 `json:"seeds"`
	Marginals        []int    `json:"marginals,omitempty"`
	EstSpread        float64  `json:"est_spread"`
	NumRRSets        int      `json:"num_rr_sets"`
	PartitionsLoaded int      `json:"partitions_loaded,omitempty"`
	IO               ioJSON   `json:"io"`
	ElapsedMS        float64  `json:"elapsed_ms"`
	// Partial reports that an anytime deadline cut the query short: Seeds is
	// a certified prefix of the full greedy answer (every listed seed would
	// appear, in this order, in the undeadlined run), not a guess.
	Partial bool `json:"partial"`
}

// streamSeedRecord is one NDJSON line of a /query?stream=1 reply: a seed the
// moment it is certified, with its marginal and the certified spread lower
// bound of the emitted prefix so far.
type streamSeedRecord struct {
	Seed     uint32  `json:"seed"`
	Marginal int     `json:"marginal"`
	SpreadLB float64 `json:"spread_lb"`
}

// streamDoneRecord terminates a /query?stream=1 reply: the full batch
// response (final spread, stats, partial marker) plus done=true. A query
// that fails after seeds already streamed instead ends with
// {"done":true,"error":...} — the HTTP status is long gone by then, so the
// failure rides the last line.
type streamDoneRecord struct {
	queryResponse
	Done bool `json:"done"`
}

// cacheJSON mirrors diskio.CacheStats for the wire.
type cacheJSON struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hit_rate"`
	Entries     int     `json:"entries"`
	BytesCached int64   `json:"bytes_cached"`
	BudgetBytes int64   `json:"budget_bytes"`
}

func toCacheJSON(s diskio.CacheStats) cacheJSON {
	return cacheJSON{
		Hits:        s.Hits,
		Misses:      s.Misses,
		HitRate:     s.HitRate(),
		Entries:     s.Entries,
		BytesCached: s.BytesCached,
		BudgetBytes: s.BudgetBytes,
	}
}

// decodedCacheJSON mirrors objcache.Stats for the wire.
type decodedCacheJSON struct {
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Shared      int64   `json:"shared"` // singleflight-collapsed loads
	HitRate     float64 `json:"hit_rate"`
	Entries     int     `json:"entries"`
	BytesCached int64   `json:"bytes_cached"`
	BudgetBytes int64   `json:"budget_bytes"`
}

func toDecodedCacheJSON(s objcache.Stats) decodedCacheJSON {
	return decodedCacheJSON{
		Hits:        s.Hits,
		Misses:      s.Misses,
		Shared:      s.Shared,
		HitRate:     s.HitRate(),
		Entries:     s.Entries,
		BytesCached: s.BytesCached,
		BudgetBytes: s.BudgetBytes,
	}
}

// shardJSON is one shard's /stats breakdown.
type shardJSON struct {
	Shard      int              `json:"shard"`
	Keywords   int              `json:"keywords"`
	InFlight   int64            `json:"in_flight"`
	RRCache    cacheJSON        `json:"rr_cache"`
	IRRCache   cacheJSON        `json:"irr_cache"`
	RRDecoded  decodedCacheJSON `json:"rr_decoded_cache"`
	IRRDecoded decodedCacheJSON `json:"irr_decoded_cache"`
}

// routerBackendJSON is one downstream replica's slice of the router section.
type routerBackendJSON struct {
	URL string `json:"url"`
	// Shard is the replica group this node belongs to.
	Shard int `json:"shard"`
	// Healthy is the node's live /healthz verdict at stats time (false
	// without a probe when its breaker is open).
	Healthy bool `json:"healthy"`
	// Breaker is the node's circuit-breaker state: "closed" (traffic
	// flows), "open" (skipped, awaiting re-probe), or "half-open" (a
	// re-probe is in flight). BreakerTrips counts how many times it opened.
	Breaker      string `json:"breaker"`
	BreakerTrips int64  `json:"breaker_trips"`
	// Validated reports that the replica's index preludes were checked
	// byte-identical to its group; false means it was down at startup and
	// has not yet passed the re-admission probe.
	Validated bool `json:"validated"`
	// Proxied counts whole queries this replica answered on the fast path.
	Proxied int64 `json:"proxied"`
	// ArtifactFetches/WireBytes are the cumulative artifact traffic the
	// router pulled from this node for spanning queries: ArtifactFetches
	// counts wire round trips (per-unit GETs and batch POSTs alike),
	// WireBytes their total payload. BatchedUnits is how many artifact units
	// arrived inside batch replies; WireBytesBatch/WireBytesUnit split
	// WireBytes between the batched and per-unit paths, so a mixed-version
	// fleet shows exactly which replicas still speak v1.
	ArtifactFetches int64 `json:"artifact_fetches"`
	WireBytes       int64 `json:"wire_bytes"`
	BatchedUnits    int64 `json:"batched_units"`
	WireBytesBatch  int64 `json:"wire_bytes_batch"`
	WireBytesUnit   int64 `json:"wire_bytes_unit"`
	// Stats embeds the node's own /stats reply verbatim (null if the node
	// did not answer in time).
	Stats json.RawMessage `json:"stats,omitempty"`
}

// routerStatsJSON is the /stats router section: the fan-out picture plus
// each downstream replica's own counters, so one scrape sees the whole
// deployment.
type routerStatsJSON struct {
	Mode string `json:"mode"`
	// ProxyTimeoutSec is the configured -proxy-timeout bound on every
	// router→backend query call, surfaced so a scrape can tell how long a
	// slow backend is allowed to stall the router. HealthTTLSec and
	// ProbeTimeoutSec mirror -health-ttl and -probe-timeout.
	ProxyTimeoutSec float64 `json:"proxy_timeout_sec"`
	HealthTTLSec    float64 `json:"health_ttl_sec"`
	ProbeTimeoutSec float64 `json:"probe_timeout_sec"`
	Proxied         int64   `json:"proxied"`
	Scattered       int64   `json:"scattered"`
	// Retries counts failed router→backend attempts (proxied queries and
	// artifact fetches) that were re-issued to another replica; Failovers
	// counts requests that then SUCCEEDED on a non-first replica. Degraded
	// is the number of replicas currently behind an open breaker.
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	Degraded  int   `json:"degraded"`
	// FetchRequests is the total artifact round trips the router issued
	// (batch POSTs and per-unit GETs); BatchedUnits is how many artifact
	// units those requests carried inside batch replies. UnitsPerRequest =
	// BatchedUnits/FetchRequests — a healthy batching deployment keeps it
	// well above 1, while an all-v1 fleet pins it at 0.
	FetchRequests   int64               `json:"fetch_requests"`
	BatchedUnits    int64               `json:"batched_units"`
	UnitsPerRequest float64             `json:"units_per_request"`
	Backends        []routerBackendJSON `json:"backends"`
}

// statsResponse is the GET /stats reply. The cache sections aggregate over
// every shard; Shards carries the per-shard breakdown when the backend is a
// sharded deployment, Router the per-node breakdown when it is a cross-node
// fanout.
type statsResponse struct {
	UptimeSec float64 `json:"uptime_sec"`
	Workers   int     `json:"workers"`
	InFlight  int64   `json:"in_flight"`
	Served    int64   `json:"served"`
	Failed    int64   `json:"failed"`
	Rejected  int64   `json:"rejected"`
	Canceled  int64   `json:"canceled"`
	// DeadlinePartial counts served queries whose anytime deadline expired
	// first, so the answer was a certified prefix rather than the full top-k.
	DeadlinePartial int64            `json:"deadline_partial"`
	MeanLatencyMS   float64          `json:"mean_latency_ms"`
	NumShards       int              `json:"num_shards"`
	ShardMode       string           `json:"shard_mode,omitempty"`
	Shards          []shardJSON      `json:"shards,omitempty"`
	Router          *routerStatsJSON `json:"router,omitempty"`
	RRCache         cacheJSON        `json:"rr_cache"`
	IRRCache        cacheJSON        `json:"irr_cache"`
	RRDecoded       decodedCacheJSON `json:"rr_decoded_cache"`
	IRRDecoded      decodedCacheJSON `json:"irr_decoded_cache"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("kbtim-serve: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// validateQueryRequest rejects malformed client input before it reaches an
// engine: missing/duplicate topics, a non-positive k, and unknown
// strategies are client errors (400), not query failures. Keyword range is
// left to the engine, which knows the topic space. Returns the effective
// strategy ("irr" when unset).
func validateQueryRequest(req *queryRequest) (string, error) {
	strategy := req.Strategy
	if strategy == "" {
		strategy = "irr"
	}
	if strategy != "irr" && strategy != "rr" {
		return "", fmt.Errorf("unknown strategy %q (want rr or irr)", strategy)
	}
	if req.K <= 0 {
		return "", fmt.Errorf("k must be positive, got %d", req.K)
	}
	if len(req.Topics) == 0 {
		return "", fmt.Errorf("topics must name at least one keyword")
	}
	seen := make(map[int]bool, len(req.Topics))
	for _, w := range req.Topics {
		if seen[w] {
			return "", fmt.Errorf("duplicate topic %d", w)
		}
		seen[w] = true
	}
	if req.DeadlineMS < 0 {
		return "", fmt.Errorf("deadline_ms must be non-negative, got %d", req.DeadlineMS)
	}
	return strategy, nil
}

// ndjsonWriter emits one JSON object per line on a /query?stream=1 reply.
// Headers go out lazily with the first record, so a query that errors before
// certifying anything still gets a real HTTP status; once a record is out,
// the stream is committed and later failures ride the terminal line. Every
// record is flushed immediately — the first certified seed reaches the
// client while the rest of the query is still running.
type ndjsonWriter struct {
	w       http.ResponseWriter
	enc     *json.Encoder
	started bool
}

func (nw *ndjsonWriter) record(v interface{}) {
	if !nw.started {
		nw.w.Header().Set("Content-Type", "application/x-ndjson")
		nw.w.WriteHeader(http.StatusOK)
		nw.enc = json.NewEncoder(nw.w)
		nw.started = true
	}
	if err := nw.enc.Encode(v); err != nil {
		log.Printf("kbtim-serve: encode stream record: %v", err)
		return
	}
	if f, ok := nw.w.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req queryRequest
	// A query is a handful of ints; cap the body so a hostile payload
	// cannot allocate unbounded memory before validation runs.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.rejected.Add(1)
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	strategy, err := validateQueryRequest(&req)
	if err != nil {
		// Malformed client input is rejected before dispatch: a 400 with a
		// JSON error, counted in `rejected` — not surfaced as an engine
		// error inflating `failed`.
		s.rejected.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Wait for a pool slot; a closed connection abandons the wait. A client
	// that hung up is not a server failure — it gets its own counter, and
	// nothing is written to the dead connection.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		s.canceled.Add(1)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// The request context rides into the query itself: when the client
	// disconnects, the engine observes the cancellation at its next
	// keyword-load or partition-round boundary and aborts, releasing this
	// worker slot within one round instead of after a full Algorithm 2/4 run.
	q := kbtim.Query{Topics: req.Topics, K: req.K}

	var so kbtim.StreamOptions
	if req.DeadlineMS > 0 {
		so.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	} else if s.defaultDeadline > 0 {
		so.Deadline = time.Now().Add(s.defaultDeadline)
	}
	stream := r.URL.Query().Get("stream") == "1"
	var sw *ndjsonWriter
	if stream {
		sw = &ndjsonWriter{w: w}
		so.Emit = func(seed kbtim.Seed, marginal int, spreadLB float64) {
			sw.record(streamSeedRecord{Seed: uint32(seed), Marginal: marginal, SpreadLB: spreadLB})
		}
	}

	start := time.Now()
	var res *kbtim.Result
	if strategy == "rr" {
		res, err = s.eng.QueryRRStreamCtx(r.Context(), q, so)
	} else {
		res, err = s.eng.QueryIRRStreamCtx(r.Context(), q, so)
	}
	if err != nil {
		if r.Context().Err() != nil {
			// The client vanished mid-query (the engine aborted on the
			// canceled context, or the error raced the disconnect); skip the
			// error body.
			s.canceled.Add(1)
			return
		}
		s.failed.Add(1)
		if sw != nil && sw.started {
			// Seeds already streamed; the 200 is committed. Report the
			// failure on the terminal line instead of a status code.
			sw.record(map[string]interface{}{"done": true, "error": err.Error()})
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if r.Context().Err() != nil {
		// The client vanished while the query ran, even though it
		// succeeded: don't write to the dead connection, don't count it
		// served, and keep its latency out of the mean.
		s.canceled.Add(1)
		return
	}
	s.served.Add(1)
	s.totalNS.Add(time.Since(start).Nanoseconds())
	if res.Partial {
		s.deadlinePartial.Add(1)
	}
	resp := queryResponse{
		Strategy:         strategy,
		Seeds:            res.Seeds,
		Marginals:        res.Marginals,
		EstSpread:        res.EstSpread,
		NumRRSets:        res.NumRRSets,
		PartitionsLoaded: res.PartitionsLoaded,
		IO: ioJSON{
			SequentialReads: res.IO.SequentialReads,
			RandomReads:     res.IO.RandomReads,
			BytesRead:       res.IO.BytesRead,
			CacheHits:       res.IO.CacheHits,
			CacheMisses:     res.IO.CacheMisses,
			DecodedHits:     res.IO.DecodedHits,
			DecodedMisses:   res.IO.DecodedMisses,
		},
		ElapsedMS: res.Elapsed.Seconds() * 1000,
		Partial:   res.Partial,
	}
	if sw != nil {
		sw.record(streamDoneRecord{queryResponse: resp, Done: true})
		return
	}
	// Batch replies stream-encode too: commit the status and flush the
	// headers before encoding, then encode straight onto the wire instead
	// of buffering the whole body — a slow client starts reading at once.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("kbtim-serve: encode response: %v", err)
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleKeywords(w http.ResponseWriter, r *http.Request) {
	kws := s.eng.IndexedKeywords()
	if kws == nil {
		writeError(w, http.StatusServiceUnavailable, "no index attached")
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"topics": kws,
		"count":  len(kws),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	served := s.served.Load()
	mean := 0.0
	if served > 0 {
		mean = float64(s.totalNS.Load()) / float64(served) / 1e6
	}
	rrCache, irrCache := s.eng.CacheStats()
	rrDec, irrDec := s.eng.DecodedCacheStats()
	resp := statsResponse{
		UptimeSec:       time.Since(s.started).Seconds(),
		Workers:         cap(s.sem),
		InFlight:        s.inflight.Load(),
		Served:          served,
		Failed:          s.failed.Load(),
		Rejected:        s.rejected.Load(),
		Canceled:        s.canceled.Load(),
		DeadlinePartial: s.deadlinePartial.Load(),
		MeanLatencyMS:   mean,
		NumShards:       1,
		RRCache:         toCacheJSON(rrCache),
		IRRCache:        toCacheJSON(irrCache),
		RRDecoded:       toDecodedCacheJSON(rrDec),
		IRRDecoded:      toDecodedCacheJSON(irrDec),
	}
	if rs, ok := s.eng.(routerStatser); ok {
		resp.Router = rs.RouterStats(r.Context())
	}
	if sh, ok := s.eng.(shardStatser); ok {
		resp.NumShards = sh.NumShards()
		resp.ShardMode = string(sh.Mode())
		for _, st := range sh.ShardStats() {
			resp.Shards = append(resp.Shards, shardJSON{
				Shard:      st.Shard,
				Keywords:   st.Keywords,
				InFlight:   st.InFlight,
				RRCache:    toCacheJSON(st.RRCache),
				IRRCache:   toCacheJSON(st.IRRCache),
				RRDecoded:  toDecodedCacheJSON(st.RRDecoded),
				IRRDecoded: toDecodedCacheJSON(st.IRRDecoded),
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if hc, ok := s.eng.(healthChecker); ok {
		if err := hc.CheckHealth(r.Context()); err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
