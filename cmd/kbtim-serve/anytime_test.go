package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"kbtim"
	"kbtim/internal/diskio"
	"kbtim/internal/objcache"
)

// postQueryStream drives /query?stream=1 and splits the NDJSON reply into
// the per-seed records and the terminal batch record. A terminal error
// line fails the test.
func postQueryStream(t *testing.T, ts *httptest.Server, req queryRequest) ([]streamSeedRecord, *queryResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		t.Fatalf("stream query: %s: %s", resp.Status, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream reply Content-Type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var seeds []streamSeedRecord
	var final *queryResponse
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatal(err)
		}
		var probe struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatal(err)
		}
		if probe.Done {
			if probe.Error != "" {
				t.Fatalf("stream terminal error: %s", probe.Error)
			}
			if final != nil {
				t.Fatal("two terminal records on one stream")
			}
			final = &queryResponse{}
			if err := json.Unmarshal(raw, final); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if final != nil {
			t.Fatal("seed record after the terminal record")
		}
		var sr streamSeedRecord
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, sr)
	}
	if final == nil {
		t.Fatal("stream ended without a terminal record")
	}
	return seeds, final
}

// TestServerStreamQuery: the NDJSON stream's seed records, concatenated,
// are exactly the batch reply for the same query, and the terminal record
// IS the batch reply.
func TestServerStreamQuery(t *testing.T) {
	srv := NewServer(testEngine(t), 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, strategy := range []string{"irr", "rr"} {
		req := queryRequest{Topics: []int{0, 1}, K: 3, Strategy: strategy}
		batch, resp := postQuery(t, ts, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: batch status %s", strategy, resp.Status)
		}
		recs, final := postQueryStream(t, ts, req)
		var seeds []uint32
		var marginals []int
		for _, r := range recs {
			seeds = append(seeds, r.Seed)
			marginals = append(marginals, r.Marginal)
		}
		if !reflect.DeepEqual(seeds, batch.Seeds) || !reflect.DeepEqual(marginals, batch.Marginals) {
			t.Fatalf("%s: streamed (%v,%v) != batch (%v,%v)", strategy, seeds, marginals, batch.Seeds, batch.Marginals)
		}
		if !reflect.DeepEqual(final.Seeds, batch.Seeds) || final.EstSpread != batch.EstSpread ||
			final.NumRRSets != batch.NumRRSets || final.Partial {
			t.Fatalf("%s: terminal record %+v != batch %+v", strategy, final, batch)
		}
	}
}

// TestServerGenerousDeadline: a deadline_ms comfortably larger than the
// query needs is invisible — identical full answer, partial false, and the
// deadline_partial counter stays 0.
func TestServerGenerousDeadline(t *testing.T) {
	srv := NewServer(testEngine(t), 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := queryRequest{Topics: []int{0, 1}, K: 3, Strategy: "irr"}
	batch, _ := postQuery(t, ts, req)
	req.DeadlineMS = 60_000
	withDeadline, resp := postQuery(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if withDeadline.Partial {
		t.Fatal("generous deadline marked the reply partial")
	}
	if !reflect.DeepEqual(withDeadline.Seeds, batch.Seeds) || withDeadline.EstSpread != batch.EstSpread {
		t.Fatal("generous deadline changed the answer")
	}
	if got := getStats(t, ts).DeadlinePartial; got != 0 {
		t.Fatalf("deadline_partial = %d, want 0", got)
	}
}

func getStats(t *testing.T, ts *httptest.Server) *statsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

// anytimeFake is a deterministic backend for the server-side anytime
// plumbing: it emits a fixed seed sequence through the sink and reports
// Partial exactly when the call carried a deadline, so the tests can pin
// the partial marker, the deadline_partial counter, and mid-stream error
// handling without racing a real engine against a clock.
type anytimeFake struct {
	emitErr bool // return an error after emitting one seed
}

func (f *anytimeFake) query(so kbtim.StreamOptions) (*kbtim.Result, error) {
	seeds := []kbtim.Seed{7, 3}
	marginals := []int{5, 2}
	for i := range seeds {
		if so.Emit != nil {
			so.Emit(seeds[i], marginals[i], float64(i+1))
		}
		if f.emitErr {
			return nil, errors.New("disk fell over mid-query")
		}
	}
	return &kbtim.Result{
		Seeds:     seeds,
		Marginals: marginals,
		EstSpread: 2,
		NumRRSets: 10,
		Partial:   !so.Deadline.IsZero(),
	}, nil
}

func (f *anytimeFake) QueryRRStreamCtx(_ context.Context, _ kbtim.Query, so kbtim.StreamOptions) (*kbtim.Result, error) {
	return f.query(so)
}

func (f *anytimeFake) QueryIRRStreamCtx(_ context.Context, _ kbtim.Query, so kbtim.StreamOptions) (*kbtim.Result, error) {
	return f.query(so)
}

func (f *anytimeFake) IndexedKeywords() []int { return []int{0, 1} }
func (f *anytimeFake) CacheStats() (diskio.CacheStats, diskio.CacheStats) {
	return diskio.CacheStats{}, diskio.CacheStats{}
}
func (f *anytimeFake) DecodedCacheStats() (objcache.Stats, objcache.Stats) {
	return objcache.Stats{}, objcache.Stats{}
}

// TestServerDeadlinePartialCounter: a reply the backend marks Partial
// carries partial=true on the wire and bumps deadline_partial in /stats —
// for the per-request deadline_ms knob and the -deadline server default
// alike.
func TestServerDeadlinePartialCounter(t *testing.T) {
	srv := NewServer(&anytimeFake{}, 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	qr, resp := postQuery(t, ts, queryRequest{Topics: []int{0}, K: 2, DeadlineMS: 50})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if !qr.Partial {
		t.Fatal("deadline-cut reply not marked partial")
	}
	if got := getStats(t, ts).DeadlinePartial; got != 1 {
		t.Fatalf("deadline_partial = %d, want 1", got)
	}

	// No per-request deadline, but a server default: same degradation.
	srv.SetDefaultDeadline(time.Second)
	if qr, _ := postQuery(t, ts, queryRequest{Topics: []int{0}, K: 2}); !qr.Partial {
		t.Fatal("server-default deadline did not reach the backend")
	}
	if got := getStats(t, ts).DeadlinePartial; got != 2 {
		t.Fatalf("deadline_partial = %d, want 2", got)
	}
}

// TestServerStreamMidstreamError: once seeds have streamed the 200 is
// committed, so a late failure must arrive as a terminal
// {"done":true,"error":...} record, count as failed, and not as served.
func TestServerStreamMidstreamError(t *testing.T) {
	srv := NewServer(&anytimeFake{emitErr: true}, 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Topics: []int{0}, K: 2})
	resp, err := http.Post(ts.URL+"/query?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s (the stream had already started)", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	sawSeed, sawErr := false, false
	for {
		var rec struct {
			Seed  *uint32 `json:"seed"`
			Done  bool    `json:"done"`
			Error string  `json:"error"`
		}
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatal(err)
		}
		switch {
		case rec.Done:
			if rec.Error == "" {
				t.Fatal("terminal record after a failure carries no error")
			}
			sawErr = true
		case rec.Seed != nil:
			sawSeed = true
		}
	}
	if !sawSeed || !sawErr {
		t.Fatalf("stream: sawSeed=%v sawErr=%v, want both", sawSeed, sawErr)
	}
	st := getStats(t, ts)
	if st.Failed != 1 || st.Served != 0 {
		t.Fatalf("failed=%d served=%d, want 1/0", st.Failed, st.Served)
	}
}

// TestDriveStream: the load driver's streaming mode completes queries,
// records time-to-first-seed, and sees zero deadline-cut replies when no
// deadline is set.
func TestDriveStream(t *testing.T) {
	srv := NewServer(testEngine(t), 4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := drive(driveConfig{
		Target:   ts.URL,
		Clients:  4,
		Duration: 300 * time.Millisecond,
		K:        2,
		MaxLen:   2,
		Strategy: "irr",
		Seed:     3,
		Stream:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("driver completed no queries")
	}
	if rep.Errors != 0 {
		t.Fatalf("driver saw %d errors", rep.Errors)
	}
	if !rep.Streamed || rep.FirstSeedP50MS <= 0 || rep.FirstSeedP99MS < rep.FirstSeedP50MS {
		t.Fatalf("implausible first-seed stats: %+v", rep)
	}
	if rep.Partials != 0 {
		t.Fatalf("%d deadline-cut replies without a deadline", rep.Partials)
	}
}
