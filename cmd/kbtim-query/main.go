// Command kbtim-query answers KB-TIM queries against a dataset, using any
// of the three processing strategies (wris, rr, irr) or the non-targeted
// RIS baseline.
//
// Usage:
//
//	kbtim-query -graph g.bin -profiles p.bin -index ads.irr -type irr \
//	            -topics 2,7 -k 10 -evaluate
//
// Sharded index sets (the per-shard "<index>.s<i>" files kbtim-build
// -shards writes) are opened with the matching flags; results are identical
// to querying the unsharded index:
//
//	kbtim-query -graph g.bin -profiles p.bin -index ads.irr -type irr \
//	            -shards 2 -shard-mode hash -topics 2,7 -k 10
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"kbtim"
)

func parseTopics(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("no -topics given")
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad topic %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	var (
		graphPath   = flag.String("graph", "graph.bin", "input graph path")
		profilePath = flag.String("profiles", "profiles.bin", "input profiles path")
		indexPath   = flag.String("index", "", "index path (for -type rr|irr)")
		shards      = flag.Int("shards", 1, "open a sharded index set: shard i at <index>.s<i> (for -type rr|irr)")
		shardMode   = flag.String("shard-mode", "hash", "keyword→shard assignment of the sharded set: hash | range | replicate")
		method      = flag.String("type", "irr", "strategy: wris | rr | irr | ris")
		model       = flag.String("model", "IC", "propagation model: IC | LT")
		topicsFlag  = flag.String("topics", "", "comma-separated advertisement keywords")
		k           = flag.Int("k", 10, "number of seeds Q.k")
		epsilon     = flag.Float64("epsilon", 0.3, "approximation ε (online methods)")
		bigK        = flag.Int("K", 100, "system cap on Q.k")
		maxTheta    = flag.Int("max-theta", 0, "per-keyword sampling cap (0 = none)")
		seed        = flag.Uint64("seed", 1, "RNG seed")
		evaluate    = flag.Bool("evaluate", false, "Monte-Carlo-verify the result spread")
		rounds      = flag.Int("rounds", 5000, "Monte-Carlo rounds for -evaluate")
		timeout     = flag.Duration("timeout", 0, "abort the query with an error after this long, 0 = none (for -type rr|irr)")
		deadline    = flag.Duration("deadline", 0, "anytime deadline: past it, return the best certified seed prefix instead of erroring, 0 = none (for -type rr|irr)")
		stream      = flag.Bool("stream", false, "print each seed the moment it is certified, with its running spread lower bound (for -type rr|irr)")
	)
	flag.Parse()

	ds, err := kbtim.LoadDataset(*graphPath, *profilePath)
	if err != nil {
		log.Fatalf("kbtim-query: %v", err)
	}
	opts := kbtim.Options{
		Epsilon:            *epsilon,
		K:                  *bigK,
		Model:              kbtim.Model(*model),
		MaxThetaPerKeyword: *maxTheta,
		Seed:               *seed,
	}
	eng, err := kbtim.NewEngine(ds, opts)
	if err != nil {
		log.Fatalf("kbtim-query: %v", err)
	}
	defer eng.Close()
	if *shards < 1 {
		log.Fatalf("kbtim-query: -shards must be >= 1, got %d", *shards)
	}
	if *shards > 1 && *method != "rr" && *method != "irr" {
		log.Fatalf("kbtim-query: -shards applies to the disk indexes only (-type rr|irr), not %q", *method)
	}
	if (*timeout > 0 || *deadline > 0 || *stream) && *method != "rr" && *method != "irr" {
		log.Fatalf("kbtim-query: -timeout/-deadline/-stream apply to the disk indexes only (-type rr|irr), not %q", *method)
	}

	// The two knobs degrade differently on expiry: -timeout cancels the
	// context (the query errors out), -deadline keeps the certified prefix
	// found so far and marks the result partial.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var so kbtim.StreamOptions
	if *deadline > 0 {
		so.Deadline = time.Now().Add(*deadline)
	}
	if *stream {
		so.Emit = func(seed kbtim.Seed, marginal int, spreadLB float64) {
			fmt.Printf("seed:      %d  (marginal %d, spread >= %.3f)\n", seed, marginal, spreadLB)
		}
	}

	// openSharded assembles the per-shard engines over the "<index>.s<i>"
	// files kbtim-build -shards wrote; queries through it return exactly
	// what the unsharded index would.
	openSharded := func(rrPath, irrPath string) *kbtim.Sharded {
		s, err := kbtim.OpenShardedIndexes(ds, opts, rrPath, irrPath, *shards, kbtim.ShardMode(*shardMode), 0)
		if err != nil {
			log.Fatalf("kbtim-query: %v", err)
		}
		return s
	}

	var res *kbtim.Result
	var q kbtim.Query
	switch *method {
	case "ris":
		res, err = eng.QueryRIS(*k)
	case "wris", "rr", "irr":
		topics, terr := parseTopics(*topicsFlag)
		if terr != nil {
			log.Fatalf("kbtim-query: %v", terr)
		}
		q = kbtim.Query{Topics: topics, K: *k}
		switch {
		case *method == "wris":
			res, err = eng.QueryWRIS(q)
		case *method == "rr" && *shards > 1:
			s := openSharded(*indexPath, "")
			defer s.Close()
			res, err = s.QueryRRStreamCtx(ctx, q, so)
		case *method == "rr":
			if err := eng.OpenRRIndex(*indexPath); err != nil {
				log.Fatalf("kbtim-query: %v", err)
			}
			res, err = eng.QueryRRStreamCtx(ctx, q, so)
		case *method == "irr" && *shards > 1:
			s := openSharded("", *indexPath)
			defer s.Close()
			res, err = s.QueryIRRStreamCtx(ctx, q, so)
		case *method == "irr":
			if err := eng.OpenIRRIndex(*indexPath); err != nil {
				log.Fatalf("kbtim-query: %v", err)
			}
			res, err = eng.QueryIRRStreamCtx(ctx, q, so)
		}
	default:
		log.Fatalf("kbtim-query: unknown strategy %q", *method)
	}
	if err != nil {
		log.Fatalf("kbtim-query: %v", err)
	}

	fmt.Printf("seeds:     %v\n", res.Seeds)
	if res.Partial {
		fmt.Println("partial:   deadline expired; seeds are a certified prefix of the full answer")
	}
	fmt.Printf("est.spread %.3f  (from %d RR sets, %v)\n", res.EstSpread, res.NumRRSets, res.Elapsed.Round(1e4))
	if res.IO.Total() > 0 {
		fmt.Printf("I/O:       %d ops (%d seq, %d rand), %.1f KB\n",
			res.IO.Total(), res.IO.SequentialReads, res.IO.RandomReads,
			float64(res.IO.BytesRead)/1024)
	}
	if res.ThetaCapped {
		fmt.Println("warning: sampling was capped; the approximation guarantee is voided")
	}
	if *evaluate && *method != "ris" {
		mc, err := eng.EvaluateSpread(res.Seeds, q, *rounds)
		if err != nil {
			log.Fatalf("kbtim-query: %v", err)
		}
		fmt.Printf("MC spread: %.3f over %d rounds\n", mc, *rounds)
	}
	if *evaluate && *method == "ris" {
		mc, err := eng.EvaluateReach(res.Seeds, *rounds)
		if err != nil {
			log.Fatalf("kbtim-query: %v", err)
		}
		fmt.Printf("MC reach:  %.3f users over %d rounds\n", mc, *rounds)
	}
}
