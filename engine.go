package kbtim

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/objcache"
	"kbtim/internal/prop"
	"kbtim/internal/remote"
	"kbtim/internal/rng"
	"kbtim/internal/rrindex"
	"kbtim/internal/wris"
)

// Options tunes an Engine. The zero value of every field selects a sensible
// default (ε=0.1, K=100, IC model, compression on, δ=100).
type Options struct {
	// Epsilon is the ε of the (1−1/e−ε) guarantee; θ scales with 1/ε².
	// The paper uses 0.1; laptop-scale runs often prefer 0.3–0.5.
	Epsilon float64
	// K is the system cap on Q.k the offline indexes are sized for (§4.2).
	K int
	// Model selects IC (default) or LT propagation.
	Model Model
	// Compress toggles inverted-list compression. Defaults to true (the
	// paper's adopted configuration after Table 4); set CompressOff to
	// disable.
	CompressOff bool
	// PartitionSize is the IRR δ (default 100, as in the paper).
	PartitionSize int
	// ThetaHatSizing switches index sizing to the conservative θ̂_w bound
	// of Eqn 8 (Table 3's ablation). Default is the improved θ_w (Eqn 10).
	ThetaHatSizing bool
	// MaxThetaPerKeyword caps per-keyword sample counts (0 = uncapped).
	// Capping keeps laptop builds bounded but voids the formal guarantee
	// when hit; Result.ThetaCapped reports it.
	MaxThetaPerKeyword int
	// PilotSets is the sampling budget of each OPT estimation (default
	// 4096).
	PilotSets int
	// Seed drives all randomness (default 1).
	Seed uint64
	// Workers bounds sampling parallelism (0 = GOMAXPROCS).
	Workers int
	// CacheBytes is the byte budget of the in-memory segment cache placed
	// in front of each opened index file (0 = no cache, every query reads
	// from disk). Repeated-keyword workloads served by one Engine benefit
	// the most; Result.IO reports per-query hits and misses and
	// Engine.CacheStats the cache-wide view.
	CacheBytes int64
	// DecodedCacheBytes is the byte budget of the decoded-object cache
	// attached to each opened index (0 = none). Where CacheBytes caches raw
	// segment bytes, this tier caches the PARSED artifacts queries consume
	// (RR-set batch prefixes, inverted tables, IP tables, partition
	// blocks) with singleflight loading, so a hot keyword skips the disk
	// AND the decode. Result.IO reports per-query decoded hits/misses and
	// Engine.DecodedCacheStats the cache-wide view. The two tiers compose:
	// a decoded miss still reads through the segment cache.
	DecodedCacheBytes int64
	// CacheShards is the shard count of the decoded-object cache (rounded
	// up to a power of two; 0 = a power of two near GOMAXPROCS). Each shard
	// has its own lock, byte budget, and singleflight group, so concurrent
	// queries on different keywords never contend on one cache mutex. Only
	// meaningful with DecodedCacheBytes > 0.
	CacheShards int
	// QueryParallelism bounds how many artifacts ONE query fetches and
	// decodes concurrently (0 or 1 = fully sequential). For QueryRR it
	// parallelizes the per-keyword set-prefix and inverted-table loads; for
	// QueryIRR it parallelizes IP-table loading and speculatively prefetches
	// each keyword's next partition while the current NRA round runs. Seeds
	// and spreads are identical either way; only latency and the I/O shape
	// change (IRR speculation may read partitions the query ends up not
	// needing).
	QueryParallelism int
}

func (o Options) wrisConfig() wris.Config {
	cfg := wris.DefaultConfig()
	if o.Epsilon != 0 {
		cfg.Epsilon = o.Epsilon
	}
	if o.K != 0 {
		cfg.K = o.K
	}
	if o.PilotSets != 0 {
		cfg.PilotSets = o.PilotSets
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.MaxThetaPerKeyword = o.MaxThetaPerKeyword
	cfg.Workers = o.Workers
	return cfg
}

func (o Options) compression() codec.Compression {
	if o.CompressOff {
		return codec.Raw
	}
	return codec.Delta
}

func (o Options) sizing() wris.SizingMode {
	if o.ThetaHatSizing {
		return wris.SizeThetaHat
	}
	return wris.SizeTheta
}

// IOStats summarizes the logical disk activity of one index query. The
// read counters cover reads that reached the index file; segments served
// from the Engine's segment cache (Options.CacheBytes) appear only in
// CacheHits, and artifacts served from the decoded-object cache
// (Options.DecodedCacheBytes) only in DecodedHits — a decoded hit incurs
// neither a read nor a decode.
type IOStats struct {
	SequentialReads int64
	RandomReads     int64
	BytesRead       int64
	CacheHits       int64
	CacheMisses     int64
	DecodedHits     int64
	DecodedMisses   int64
}

// Total returns the total logical read operations (the Table 6 metric).
// Cache hits are excluded: they cost no I/O.
func (s IOStats) Total() int64 { return s.SequentialReads + s.RandomReads }

// Result reports one query run, for any of the processing strategies.
type Result struct {
	// Seeds are the selected seed users, in selection order.
	Seeds []Seed
	// Marginals[i] is the number of newly covered RR sets when Seeds[i] was
	// picked — the greedy trace Theorem 3 proves identical between the RR
	// and IRR strategies, and the cross-shard/cross-node parity tests pin
	// across deployments (nil for the online strategies, which report no
	// trace).
	Marginals []int
	// EstSpread is the estimated expected targeted influence E[I^Q(S)]
	// in tf-idf units (vertex counts for QueryRIS).
	EstSpread float64
	// NumRRSets is the number of RR sets examined/loaded (the Figures 5–7
	// series).
	NumRRSets int
	// ThetaCapped is true when MaxThetaPerKeyword truncated sampling,
	// voiding the formal guarantee for this run.
	ThetaCapped bool
	// IO is the disk activity (zero for the online strategies).
	IO IOStats
	// PartitionsLoaded counts IRR partition fetches (zero elsewhere).
	PartitionsLoaded int
	// Partial is true when a streaming deadline (StreamOptions.Deadline)
	// stopped the query before the full answer: Seeds is the certified
	// prefix selected so far and EstSpread its spread — a lower bound on
	// the full answer's, never a guess.
	Partial bool
	// Elapsed is the wall-clock processing time.
	Elapsed time.Duration
}

// EmitFunc receives one certified seed the moment a query path selects it:
// the seed, its marginal coverage, and the running spread lower bound of the
// emitted prefix. Called synchronously on the query goroutine, in selection
// order; the concatenated emissions always equal the returned Result's
// Seeds/Marginals prefix exactly.
type EmitFunc func(seed Seed, marginal int, spreadLB float64)

// StreamOptions carries the anytime-query hooks of the streaming entry
// points (QueryRRStreamCtx / QueryIRRStreamCtx, and their Sharded
// counterparts). The zero value means "batch": no emission, no deadline —
// QueryRRCtx is literally QueryRRStreamCtx with zero options.
type StreamOptions struct {
	// Emit, when non-nil, streams each seed as it is certified.
	Emit EmitFunc
	// Deadline, when non-zero, turns timeout into degradation: once it
	// passes, the query returns the best certified prefix with
	// Result.Partial=true instead of an error.
	Deadline time.Time
}

// internal converts to the index layers' option type (Seed is an alias of
// uint32, so the sink passes through unwrapped).
func (so StreamOptions) internal() wris.StreamOptions {
	return wris.StreamOptions{Emit: wris.EmitFunc(so.Emit), Deadline: so.Deadline}
}

// BuildReport summarizes an index build (Tables 3–5).
type BuildReport struct {
	// Bytes is the index file size.
	Bytes int64
	// SumTheta is Σ_w θ_w, the total number of pre-sampled RR sets.
	SumTheta int64
	// MeanRRSetSize is the average RR-set cardinality.
	MeanRRSetSize float64
	// Keywords is the number of indexed keywords.
	Keywords int
	// Capped counts keywords whose θ_w hit MaxThetaPerKeyword.
	Capped int
	// Elapsed is the build wall-clock time.
	Elapsed time.Duration
}

// indexHandle is one attached index file with everything hanging off it:
// the counted file, the optional cache tiers, and the parsed index (exactly
// one of rr/irr is non-nil). Handles are reference-counted: the Engine
// holds one reference while the handle is attached, and every in-flight
// query holds one for its duration, so OpenRRIndex/OpenIRRIndex/Close swap
// the Engine's pointer instantly and the file closes only when the last
// query using it finishes. This is what lets queries proceed while a swap
// (or another slow query) is in progress — there is no reader/writer lock
// held across query execution for a pending writer to starve.
type indexHandle struct {
	refs  atomic.Int64
	file  *diskio.File
	cache *diskio.CachedReader
	dec   *objcache.Cache
	rr    *rrindex.Index
	irr   *irrindex.Index
}

// release drops one reference; the last release closes the file and
// returns its error (earlier releases return nil).
func (h *indexHandle) release() error {
	if h == nil {
		return nil
	}
	if h.refs.Add(-1) == 0 {
		return h.file.Close()
	}
	return nil
}

// Engine answers KB-TIM queries over one dataset. Create with NewEngine,
// then either query online (QueryWRIS) or build/open a disk index and use
// QueryRR / QueryIRR.
//
// An Engine is safe for concurrent use: any number of goroutines may issue
// QueryRR/QueryIRR (and the online queries) against one shared Engine.
// Every query works on private scratch state and a per-query I/O scope, and
// index files are read with positional reads only. OpenRRIndex,
// OpenIRRIndex, and Close may also be called concurrently with queries and
// are hot swaps: a query pins the index handle it started on (reference
// counted, closed when its last user finishes) and the swap replaces the
// Engine's handle without waiting, so no query ever stalls behind a pending
// Open/Close and vice versa. Close is idempotent; after Close, new queries
// fail immediately while in-flight ones finish on their pinned handles.
type Engine struct {
	ds    *Dataset
	opts  Options
	model prop.Model
	cfg   wris.Config

	// mu guards only the handle pointers and the closed flag, for O(1)
	// pointer swaps and acquisitions — it is never held across a query or
	// any I/O, so it cannot be the writer-starvation lock the previous
	// whole-query RWMutex was.
	mu     sync.Mutex //kbtim:lockrank 30
	closed bool
	rrH    *indexHandle
	irrH   *indexHandle
}

// acquireRR pins the current RR handle for one query.
func (e *Engine) acquireRR() (*indexHandle, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("kbtim: engine is closed")
	}
	if e.rrH == nil {
		return nil, fmt.Errorf("kbtim: no RR index opened (call OpenRRIndex)")
	}
	e.rrH.refs.Add(1)
	return e.rrH, nil
}

// acquireIRR pins the current IRR handle for one query.
func (e *Engine) acquireIRR() (*indexHandle, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("kbtim: engine is closed")
	}
	if e.irrH == nil {
		return nil, fmt.Errorf("kbtim: no IRR index opened (call OpenIRRIndex)")
	}
	e.irrH.refs.Add(1)
	return e.irrH, nil
}

// NewEngine validates options and binds them to a dataset.
func NewEngine(ds *Dataset, opts Options) (*Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("kbtim: nil dataset")
	}
	model, err := opts.Model.internal()
	if err != nil {
		return nil, err
	}
	cfg := opts.wrisConfig()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.PartitionSize < 0 {
		return nil, fmt.Errorf("kbtim: negative partition size")
	}
	if opts.CacheShards < 0 {
		return nil, fmt.Errorf("kbtim: negative cache shard count")
	}
	if opts.QueryParallelism < 0 {
		return nil, fmt.Errorf("kbtim: negative query parallelism")
	}
	return &Engine{ds: ds, opts: opts, model: model, cfg: cfg}, nil
}

// Close detaches any open index files and marks the engine closed; further
// Close calls are no-ops (double Close returns nil). Queries already in
// flight finish on their pinned handles — each file actually closes when
// its last user releases it, and a close error surfacing on such a deferred
// release is dropped (the files are read-only, so nothing is lost).
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	rrH, irrH := e.rrH, e.irrH
	e.rrH, e.irrH = nil, nil
	e.mu.Unlock()
	first := rrH.release()
	if err := irrH.release(); err != nil && first == nil {
		first = err
	}
	return first
}

// BuildRRIndex builds the disk-based RR index (Algorithm 1) at path.
func (e *Engine) BuildRRIndex(path string) (*BuildReport, error) {
	return e.BuildRRIndexTopics(path, nil)
}

// BuildRRIndexTopics builds an RR index restricted to the given topic IDs
// (nil = every topic with positive mass, i.e. BuildRRIndex). Each keyword's
// θ_w planning and RR-set sampling are seeded by the topic ID alone, so a
// keyword's payload is bit-identical whether it is built into a full index
// or a subset one — the property keyword-sharded serving relies on for
// exact result parity.
func (e *Engine) BuildRRIndexTopics(path string, topics []int) (*BuildReport, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	stats, err := rrindex.Build(f, e.ds.graph, e.model, e.ds.profiles, e.cfg, rrindex.BuildOptions{
		Compression: e.opts.compression(),
		Sizing:      e.opts.sizing(),
		Topics:      topics,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return buildReport(stats.Keywords, stats.TotalBytes, stats.SumTheta(), stats.MeanRRSize(), stats.Elapsed,
		func(k rrindex.KeywordStats) bool { return k.Capped }), nil
}

// BuildIRRIndex builds the incremental IRR index (Algorithm 3) at path.
func (e *Engine) BuildIRRIndex(path string) (*BuildReport, error) {
	return e.BuildIRRIndexTopics(path, nil)
}

// BuildIRRIndexTopics builds an IRR index restricted to the given topic IDs
// (nil = every topic with positive mass). See BuildRRIndexTopics for the
// per-keyword determinism guarantee sharded serving builds on.
func (e *Engine) BuildIRRIndexTopics(path string, topics []int) (*BuildReport, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	stats, err := irrindex.Build(f, e.ds.graph, e.model, e.ds.profiles, e.cfg, irrindex.BuildOptions{
		Compression:   e.opts.compression(),
		Sizing:        e.opts.sizing(),
		PartitionSize: e.opts.PartitionSize,
		Topics:        topics,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return buildReport(stats.Keywords, stats.TotalBytes, stats.SumTheta(), stats.MeanRRSize(), stats.Elapsed,
		func(k irrindex.KeywordStats) bool { return k.Capped }), nil
}

// buildReport assembles the public report from either index's build stats.
func buildReport[K any](keywords []K, bytes, sumTheta int64, meanRR float64, elapsed time.Duration, capped func(K) bool) *BuildReport {
	n := 0
	for _, k := range keywords {
		if capped(k) {
			n++
		}
	}
	return &BuildReport{
		Bytes:         bytes,
		SumTheta:      sumTheta,
		MeanRRSetSize: meanRR,
		Keywords:      len(keywords),
		Capped:        n,
		Elapsed:       elapsed,
	}
}

// IndexableTopics returns the sorted topic IDs a full index build would
// cover: every topic with positive relevance mass. Sharded deployments
// partition exactly this universe (via internal/shardmap) so the per-shard
// builds and the serve-time router agree on ownership.
func (e *Engine) IndexableTopics() []int {
	var topics []int
	for t := 0; t < e.ds.NumTopics(); t++ {
		if e.ds.profiles.TFSum(t) > 0 {
			topics = append(topics, t)
		}
	}
	return topics
}

// openHandle opens path into a fresh handle (refs=1, the caller's
// reference), wiring in the cache tiers Options ask for.
func (e *Engine) openHandle(path string) (*indexHandle, diskio.Segmented, error) {
	f, err := diskio.Open(path, diskio.NewCounter())
	if err != nil {
		return nil, nil, err
	}
	h := &indexHandle{file: f}
	h.refs.Store(1)
	var r diskio.Segmented = f
	if e.opts.CacheBytes > 0 {
		h.cache = diskio.NewCachedReader(f, e.opts.CacheBytes)
		r = h.cache
	}
	if e.opts.DecodedCacheBytes > 0 {
		h.dec = objcache.NewSharded(e.opts.DecodedCacheBytes, e.opts.CacheShards)
	}
	return h, r, nil
}

// attach swaps a fully constructed handle into *slot, returning the handle
// it replaced (not yet released). Fails without attaching when the engine
// is closed.
func (e *Engine) attach(slot **indexHandle, h *indexHandle) (*indexHandle, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("kbtim: engine is closed")
	}
	old := *slot
	*slot = h
	return old, nil
}

// OpenRRIndex attaches a previously built RR index for QueryRR, replacing
// any index attached before. The swap is immediate — queries in flight on
// the replaced index finish undisturbed on their pinned handle, and its
// file closes when the last of them releases it. A close error is reported
// when the replaced index was idle (the swap itself was its last user);
// the new index stays attached either way.
func (e *Engine) OpenRRIndex(path string) error {
	h, r, err := e.openHandle(path)
	if err != nil {
		return err
	}
	h.rr, err = rrindex.Open(r)
	if err != nil {
		h.file.Close()
		return err
	}
	if h.dec != nil {
		h.rr.SetDecodedCache(h.dec)
	}
	h.rr.SetQueryParallelism(e.opts.QueryParallelism)
	old, err := e.attach(&e.rrH, h)
	if err != nil {
		h.file.Close()
		return err
	}
	if cerr := old.release(); cerr != nil {
		return fmt.Errorf("kbtim: closing replaced RR index file: %w", cerr)
	}
	return nil
}

// OpenIRRIndex attaches a previously built IRR index for QueryIRR,
// replacing any index attached before. Swap semantics are identical to
// OpenRRIndex's.
func (e *Engine) OpenIRRIndex(path string) error {
	h, r, err := e.openHandle(path)
	if err != nil {
		return err
	}
	h.irr, err = irrindex.Open(r)
	if err != nil {
		h.file.Close()
		return err
	}
	if h.dec != nil {
		h.irr.SetDecodedCache(h.dec)
	}
	h.irr.SetQueryParallelism(e.opts.QueryParallelism)
	old, err := e.attach(&e.irrH, h)
	if err != nil {
		h.file.Close()
		return err
	}
	if cerr := old.release(); cerr != nil {
		return fmt.Errorf("kbtim: closing replaced IRR index file: %w", cerr)
	}
	return nil
}

// CacheStats reports the segment-cache counters of the attached RR and IRR
// indexes (zero values when no cache is configured or no index is open).
func (e *Engine) CacheStats() (rr, irr diskio.CacheStats) {
	e.mu.Lock()
	rrH, irrH := e.rrH, e.irrH
	e.mu.Unlock()
	if rrH != nil && rrH.cache != nil {
		rr = rrH.cache.Stats()
	}
	if irrH != nil && irrH.cache != nil {
		irr = irrH.cache.Stats()
	}
	return rr, irr
}

// DecodedCacheStats reports the decoded-object-cache counters of the
// attached RR and IRR indexes (zero values when Options.DecodedCacheBytes
// is unset or no index is open).
func (e *Engine) DecodedCacheStats() (rr, irr objcache.Stats) {
	e.mu.Lock()
	rrH, irrH := e.rrH, e.irrH
	e.mu.Unlock()
	if rrH != nil && rrH.dec != nil {
		rr = rrH.dec.Stats()
	}
	if irrH != nil && irrH.dec != nil {
		irr = irrH.dec.Stats()
	}
	return rr, irr
}

// IndexedKeywords returns the sorted topic IDs present in the attached
// index (IRR preferred, else RR; nil when no index is open). Serving
// front-ends use it to expose the queryable keyword universe.
func (e *Engine) IndexedKeywords() []int {
	e.mu.Lock()
	rrH, irrH := e.rrH, e.irrH
	e.mu.Unlock()
	var kws []int
	switch {
	case irrH != nil:
		kws = irrH.irr.Keywords()
	case rrH != nil:
		kws = rrH.rr.Keywords()
	default:
		return nil
	}
	sort.Ints(kws)
	return kws
}

// QueryWRIS answers q with online weighted sampling (§3.2) — the
// theoretically clean but slow baseline.
func (e *Engine) QueryWRIS(q Query) (*Result, error) {
	r, err := wris.Query(e.ds.graph, e.model, e.ds.profiles, q.internal(), e.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:       r.Seeds,
		EstSpread:   r.EstSpread,
		NumRRSets:   r.NumRRSets,
		ThetaCapped: r.ThetaCapped,
		Elapsed:     r.Elapsed,
	}, nil
}

// QueryRIS answers a classic non-targeted IM query (top-k influencers
// regardless of the advertisement) — the Table 8 comparator.
func (e *Engine) QueryRIS(k int) (*Result, error) {
	r, err := wris.QueryRIS(e.ds.graph, e.model, k, e.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:       r.Seeds,
		EstSpread:   r.EstSpread,
		NumRRSets:   r.NumRRSets,
		ThetaCapped: r.ThetaCapped,
		Elapsed:     r.Elapsed,
	}, nil
}

func ioStats(s diskio.Stats, decHits, decMisses int64) IOStats {
	return IOStats{
		SequentialReads: s.SequentialReads,
		RandomReads:     s.RandomReads,
		BytesRead:       s.BytesRead,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		DecodedHits:     decHits,
		DecodedMisses:   decMisses,
	}
}

// QueryRR answers q from the opened RR index (Algorithm 2). Safe for
// concurrent use; the query pins the handle it starts on, so a concurrent
// Open/Close can neither pull the index out from under it nor make it wait.
func (e *Engine) QueryRR(q Query) (*Result, error) {
	return e.QueryRRCtx(context.Background(), q)
}

// QueryRRCtx is QueryRR with cancellation: ctx is checked at every
// keyword-load boundary, so a caller that goes away (a disconnected HTTP
// client, a router-side timeout) stops paying for artifact fetches it no
// longer wants. A canceled query returns ctx.Err().
func (e *Engine) QueryRRCtx(ctx context.Context, q Query) (*Result, error) {
	return e.QueryRRStreamCtx(ctx, q, StreamOptions{})
}

// QueryRRStreamCtx is QueryRRCtx with anytime hooks: so.Emit receives each
// seed as greedy selection certifies it, and an expired so.Deadline returns
// the best certified prefix with Partial=true instead of an error. Zero
// options degrade to exactly the batch path.
func (e *Engine) QueryRRStreamCtx(ctx context.Context, q Query, so StreamOptions) (*Result, error) {
	h, err := e.acquireRR()
	if err != nil {
		return nil, err
	}
	defer h.release()
	r, err := h.rr.QueryStreamCtx(ctx, q.internal(), so.internal())
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:     r.Seeds,
		Marginals: r.Marginals,
		EstSpread: r.EstSpread,
		NumRRSets: r.NumRRSets,
		IO:        ioStats(r.IO, r.DecodedHits, r.DecodedMisses),
		Partial:   r.Partial,
		Elapsed:   r.Elapsed,
	}, nil
}

// QueryIRR answers q from the opened IRR index (Algorithm 4). Safe for
// concurrent use; the query pins the handle it starts on, so a concurrent
// Open/Close can neither pull the index out from under it nor make it wait.
func (e *Engine) QueryIRR(q Query) (*Result, error) {
	return e.QueryIRRCtx(context.Background(), q)
}

// QueryIRRCtx is QueryIRR with cancellation: ctx is checked at every
// keyword-load and NRA partition-round boundary, so a canceled caller's
// query stops within one partition round instead of running Algorithm 4 to
// completion. A canceled query returns ctx.Err().
func (e *Engine) QueryIRRCtx(ctx context.Context, q Query) (*Result, error) {
	return e.QueryIRRStreamCtx(ctx, q, StreamOptions{})
}

// QueryIRRStreamCtx is QueryIRRCtx with anytime hooks: so.Emit receives each
// seed the moment the NRA test certifies it — typically while partitions are
// still unloaded, which is the IRR layout's defining win — and an expired
// so.Deadline returns the certified prefix with Partial=true instead of an
// error. Zero options degrade to exactly the batch path.
func (e *Engine) QueryIRRStreamCtx(ctx context.Context, q Query, so StreamOptions) (*Result, error) {
	h, err := e.acquireIRR()
	if err != nil {
		return nil, err
	}
	defer h.release()
	r, err := h.irr.QueryStreamCtx(ctx, q.internal(), so.internal())
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:            r.Seeds,
		Marginals:        r.Marginals,
		EstSpread:        r.EstSpread,
		NumRRSets:        r.NumRRSets,
		IO:               ioStats(r.IO, r.DecodedHits, r.DecodedMisses),
		PartitionsLoaded: r.PartitionsLoaded,
		Partial:          r.Partial,
		Elapsed:          r.Elapsed,
	}, nil
}

// ArtifactBytes serves one raw index artifact — the serving side of the
// cross-node fetch protocol (internal/remote): a router node opens this
// engine's index remotely and fetches the same per-keyword units local
// queries read (set prefixes, inverted regions, IP tables, partition
// blocks), so cross-node results stay bit-identical to a local open of the
// same file. kind is "rr" or "irr"; the returned size is the index file's
// total byte length (remote Open needs it to validate directory offsets).
// The handle is pinned for the read, exactly as a local query would, so a
// concurrent Open/Close cannot pull the file out from under the fetch.
//
// Unknown kinds and kinds with no index attached wrap remote.ErrNoArtifact
// — "this node does not serve that" (HTTP 404, what routers probe index
// kinds with) — while a closed engine or a failed read is a plain error
// (HTTP 500): callers must be able to tell "look elsewhere" from "retry".
func (e *Engine) ArtifactBytes(kind, unit string, topic int, aux int64) ([]byte, int64, error) {
	if kind != "rr" && kind != "irr" {
		return nil, 0, fmt.Errorf("%w: unknown index kind %q (want rr or irr)", remote.ErrNoArtifact, kind)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, 0, fmt.Errorf("kbtim: engine is closed")
	}
	h := e.rrH
	if kind == "irr" {
		h = e.irrH
	}
	if h == nil {
		e.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: no %s index attached", remote.ErrNoArtifact, kind)
	}
	h.refs.Add(1)
	e.mu.Unlock()
	defer h.release()
	if kind == "rr" {
		b, err := h.rr.ArtifactBytes(unit, topic, aux)
		return b, h.rr.Size(), err
	}
	b, err := h.irr.ArtifactBytes(unit, topic, aux)
	return b, h.irr.Size(), err
}

// EvaluateSpread Monte-Carlo-estimates the true expected targeted influence
// E[I^Q(S)] of a seed set under the engine's propagation model (the Table 7
// methodology). rounds of 10000 give ±1% on the scales used here.
func (e *Engine) EvaluateSpread(seeds []Seed, q Query, rounds int) (float64, error) {
	if rounds <= 0 {
		return 0, fmt.Errorf("kbtim: rounds must be positive")
	}
	if err := q.internal().Validate(e.ds.NumTopics()); err != nil {
		return 0, err
	}
	score := func(v uint32) float64 { return e.ds.profiles.Score(v, q.internal()) }
	return prop.EstimateWeightedSpread(e.ds.graph, e.model, seeds, score, rounds, rng.New(e.cfg.Seed^0xE7A1)), nil
}

// EvaluateReach Monte-Carlo-estimates the unweighted spread E[|I(S)|].
func (e *Engine) EvaluateReach(seeds []Seed, rounds int) (float64, error) {
	if rounds <= 0 {
		return 0, fmt.Errorf("kbtim: rounds must be positive")
	}
	return prop.EstimateSpread(e.ds.graph, e.model, seeds, rounds, rng.New(e.cfg.Seed^0xEEA2)), nil
}
