package kbtim

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"kbtim/internal/codec"
	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/prop"
	"kbtim/internal/rng"
	"kbtim/internal/rrindex"
	"kbtim/internal/wris"
)

// Options tunes an Engine. The zero value of every field selects a sensible
// default (ε=0.1, K=100, IC model, compression on, δ=100).
type Options struct {
	// Epsilon is the ε of the (1−1/e−ε) guarantee; θ scales with 1/ε².
	// The paper uses 0.1; laptop-scale runs often prefer 0.3–0.5.
	Epsilon float64
	// K is the system cap on Q.k the offline indexes are sized for (§4.2).
	K int
	// Model selects IC (default) or LT propagation.
	Model Model
	// Compress toggles inverted-list compression. Defaults to true (the
	// paper's adopted configuration after Table 4); set CompressOff to
	// disable.
	CompressOff bool
	// PartitionSize is the IRR δ (default 100, as in the paper).
	PartitionSize int
	// ThetaHatSizing switches index sizing to the conservative θ̂_w bound
	// of Eqn 8 (Table 3's ablation). Default is the improved θ_w (Eqn 10).
	ThetaHatSizing bool
	// MaxThetaPerKeyword caps per-keyword sample counts (0 = uncapped).
	// Capping keeps laptop builds bounded but voids the formal guarantee
	// when hit; Result.ThetaCapped reports it.
	MaxThetaPerKeyword int
	// PilotSets is the sampling budget of each OPT estimation (default
	// 4096).
	PilotSets int
	// Seed drives all randomness (default 1).
	Seed uint64
	// Workers bounds sampling parallelism (0 = GOMAXPROCS).
	Workers int
	// CacheBytes is the byte budget of the in-memory segment cache placed
	// in front of each opened index file (0 = no cache, every query reads
	// from disk). Repeated-keyword workloads served by one Engine benefit
	// the most; Result.IO reports per-query hits and misses and
	// Engine.CacheStats the cache-wide view.
	CacheBytes int64
}

func (o Options) wrisConfig() wris.Config {
	cfg := wris.DefaultConfig()
	if o.Epsilon != 0 {
		cfg.Epsilon = o.Epsilon
	}
	if o.K != 0 {
		cfg.K = o.K
	}
	if o.PilotSets != 0 {
		cfg.PilotSets = o.PilotSets
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.MaxThetaPerKeyword = o.MaxThetaPerKeyword
	cfg.Workers = o.Workers
	return cfg
}

func (o Options) compression() codec.Compression {
	if o.CompressOff {
		return codec.Raw
	}
	return codec.Delta
}

func (o Options) sizing() wris.SizingMode {
	if o.ThetaHatSizing {
		return wris.SizeThetaHat
	}
	return wris.SizeTheta
}

// IOStats summarizes the logical disk activity of one index query. The
// read counters cover reads that reached the index file; segments served
// from the Engine's cache (Options.CacheBytes) appear only in CacheHits.
type IOStats struct {
	SequentialReads int64
	RandomReads     int64
	BytesRead       int64
	CacheHits       int64
	CacheMisses     int64
}

// Total returns the total logical read operations (the Table 6 metric).
// Cache hits are excluded: they cost no I/O.
func (s IOStats) Total() int64 { return s.SequentialReads + s.RandomReads }

// Result reports one query run, for any of the processing strategies.
type Result struct {
	// Seeds are the selected seed users, in selection order.
	Seeds []Seed
	// EstSpread is the estimated expected targeted influence E[I^Q(S)]
	// in tf-idf units (vertex counts for QueryRIS).
	EstSpread float64
	// NumRRSets is the number of RR sets examined/loaded (the Figures 5–7
	// series).
	NumRRSets int
	// ThetaCapped is true when MaxThetaPerKeyword truncated sampling,
	// voiding the formal guarantee for this run.
	ThetaCapped bool
	// IO is the disk activity (zero for the online strategies).
	IO IOStats
	// PartitionsLoaded counts IRR partition fetches (zero elsewhere).
	PartitionsLoaded int
	// Elapsed is the wall-clock processing time.
	Elapsed time.Duration
}

// BuildReport summarizes an index build (Tables 3–5).
type BuildReport struct {
	// Bytes is the index file size.
	Bytes int64
	// SumTheta is Σ_w θ_w, the total number of pre-sampled RR sets.
	SumTheta int64
	// MeanRRSetSize is the average RR-set cardinality.
	MeanRRSetSize float64
	// Keywords is the number of indexed keywords.
	Keywords int
	// Capped counts keywords whose θ_w hit MaxThetaPerKeyword.
	Capped int
	// Elapsed is the build wall-clock time.
	Elapsed time.Duration
}

// Engine answers KB-TIM queries over one dataset. Create with NewEngine,
// then either query online (QueryWRIS) or build/open a disk index and use
// QueryRR / QueryIRR.
//
// An Engine is safe for concurrent use: any number of goroutines may issue
// QueryRR/QueryIRR (and the online queries) against one shared Engine.
// Every query works on private scratch state and a per-query I/O scope, and
// index files are read with positional reads only. OpenRRIndex,
// OpenIRRIndex, and Close may also be called concurrently with queries,
// but they are barriers, not hot swaps: they wait for in-flight queries to
// finish, and queries arriving behind a pending Open/Close wait for it to
// complete. Close is idempotent.
type Engine struct {
	ds    *Dataset
	opts  Options
	model prop.Model
	cfg   wris.Config

	mu       sync.RWMutex // guards the fields below
	closed   bool
	rrFile   *diskio.File
	rrCache  *diskio.CachedReader
	rr       *rrindex.Index
	irrFile  *diskio.File
	irrCache *diskio.CachedReader
	irr      *irrindex.Index
}

// NewEngine validates options and binds them to a dataset.
func NewEngine(ds *Dataset, opts Options) (*Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("kbtim: nil dataset")
	}
	model, err := opts.Model.internal()
	if err != nil {
		return nil, err
	}
	cfg := opts.wrisConfig()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.PartitionSize < 0 {
		return nil, fmt.Errorf("kbtim: negative partition size")
	}
	return &Engine{ds: ds, opts: opts, model: model, cfg: cfg}, nil
}

// Close releases any open index files. It waits for in-flight queries to
// finish, and further Close calls are no-ops: double Close returns nil.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var first error
	if e.rrFile != nil {
		if err := e.rrFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	if e.irrFile != nil {
		if err := e.irrFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.rrFile, e.rrCache, e.rr = nil, nil, nil
	e.irrFile, e.irrCache, e.irr = nil, nil, nil
	return first
}

// BuildRRIndex builds the disk-based RR index (Algorithm 1) at path.
func (e *Engine) BuildRRIndex(path string) (*BuildReport, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	stats, err := rrindex.Build(f, e.ds.graph, e.model, e.ds.profiles, e.cfg, rrindex.BuildOptions{
		Compression: e.opts.compression(),
		Sizing:      e.opts.sizing(),
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	capped := 0
	for _, k := range stats.Keywords {
		if k.Capped {
			capped++
		}
	}
	return &BuildReport{
		Bytes:         stats.TotalBytes,
		SumTheta:      stats.SumTheta(),
		MeanRRSetSize: stats.MeanRRSize(),
		Keywords:      len(stats.Keywords),
		Capped:        capped,
		Elapsed:       stats.Elapsed,
	}, nil
}

// BuildIRRIndex builds the incremental IRR index (Algorithm 3) at path.
func (e *Engine) BuildIRRIndex(path string) (*BuildReport, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	stats, err := irrindex.Build(f, e.ds.graph, e.model, e.ds.profiles, e.cfg, irrindex.BuildOptions{
		Compression:   e.opts.compression(),
		Sizing:        e.opts.sizing(),
		PartitionSize: e.opts.PartitionSize,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	capped := 0
	for _, k := range stats.Keywords {
		if k.Capped {
			capped++
		}
	}
	return &BuildReport{
		Bytes:         stats.TotalBytes,
		SumTheta:      stats.SumTheta(),
		MeanRRSetSize: stats.MeanRRSize(),
		Keywords:      len(stats.Keywords),
		Capped:        capped,
		Elapsed:       stats.Elapsed,
	}, nil
}

// openReader opens path and, when Options.CacheBytes is set, places a
// segment cache in front of it.
func (e *Engine) openReader(path string) (*diskio.File, *diskio.CachedReader, diskio.Segmented, error) {
	f, err := diskio.Open(path, diskio.NewCounter())
	if err != nil {
		return nil, nil, nil, err
	}
	var r diskio.Segmented = f
	var cache *diskio.CachedReader
	if e.opts.CacheBytes > 0 {
		cache = diskio.NewCachedReader(f, e.opts.CacheBytes)
		r = cache
	}
	return f, cache, r, nil
}

// OpenRRIndex attaches a previously built RR index for QueryRR, replacing
// any index attached before. The new index is attached even when closing
// the replaced index file fails; that failure is reported as the returned
// error.
func (e *Engine) OpenRRIndex(path string) error {
	f, cache, r, err := e.openReader(path)
	if err != nil {
		return err
	}
	idx, err := rrindex.Open(r)
	if err != nil {
		f.Close()
		return err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		f.Close()
		return fmt.Errorf("kbtim: engine is closed")
	}
	old := e.rrFile
	e.rrFile, e.rrCache, e.rr = f, cache, idx
	e.mu.Unlock()
	if old != nil {
		if cerr := old.Close(); cerr != nil {
			return fmt.Errorf("kbtim: closing replaced RR index file: %w", cerr)
		}
	}
	return nil
}

// OpenIRRIndex attaches a previously built IRR index for QueryIRR,
// replacing any index attached before. The new index is attached even when
// closing the replaced index file fails; that failure is reported as the
// returned error.
func (e *Engine) OpenIRRIndex(path string) error {
	f, cache, r, err := e.openReader(path)
	if err != nil {
		return err
	}
	idx, err := irrindex.Open(r)
	if err != nil {
		f.Close()
		return err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		f.Close()
		return fmt.Errorf("kbtim: engine is closed")
	}
	old := e.irrFile
	e.irrFile, e.irrCache, e.irr = f, cache, idx
	e.mu.Unlock()
	if old != nil {
		if cerr := old.Close(); cerr != nil {
			return fmt.Errorf("kbtim: closing replaced IRR index file: %w", cerr)
		}
	}
	return nil
}

// CacheStats reports the segment-cache counters of the attached RR and IRR
// indexes (zero values when no cache is configured or no index is open).
func (e *Engine) CacheStats() (rr, irr diskio.CacheStats) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.rrCache != nil {
		rr = e.rrCache.Stats()
	}
	if e.irrCache != nil {
		irr = e.irrCache.Stats()
	}
	return rr, irr
}

// IndexedKeywords returns the sorted topic IDs present in the attached
// index (IRR preferred, else RR; nil when no index is open). Serving
// front-ends use it to expose the queryable keyword universe.
func (e *Engine) IndexedKeywords() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var kws []int
	switch {
	case e.irr != nil:
		kws = e.irr.Keywords()
	case e.rr != nil:
		kws = e.rr.Keywords()
	default:
		return nil
	}
	sort.Ints(kws)
	return kws
}

// QueryWRIS answers q with online weighted sampling (§3.2) — the
// theoretically clean but slow baseline.
func (e *Engine) QueryWRIS(q Query) (*Result, error) {
	r, err := wris.Query(e.ds.graph, e.model, e.ds.profiles, q.internal(), e.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:       r.Seeds,
		EstSpread:   r.EstSpread,
		NumRRSets:   r.NumRRSets,
		ThetaCapped: r.ThetaCapped,
		Elapsed:     r.Elapsed,
	}, nil
}

// QueryRIS answers a classic non-targeted IM query (top-k influencers
// regardless of the advertisement) — the Table 8 comparator.
func (e *Engine) QueryRIS(k int) (*Result, error) {
	r, err := wris.QueryRIS(e.ds.graph, e.model, k, e.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:       r.Seeds,
		EstSpread:   r.EstSpread,
		NumRRSets:   r.NumRRSets,
		ThetaCapped: r.ThetaCapped,
		Elapsed:     r.Elapsed,
	}, nil
}

func ioStats(s diskio.Stats) IOStats {
	return IOStats{
		SequentialReads: s.SequentialReads,
		RandomReads:     s.RandomReads,
		BytesRead:       s.BytesRead,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
	}
}

// QueryRR answers q from the opened RR index (Algorithm 2). Safe for
// concurrent use; the read lock is held for the duration of the query so
// Open/Close cannot pull the index file out from under it.
func (e *Engine) QueryRR(q Query) (*Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("kbtim: engine is closed")
	}
	if e.rr == nil {
		return nil, fmt.Errorf("kbtim: no RR index opened (call OpenRRIndex)")
	}
	r, err := e.rr.Query(q.internal())
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:     r.Seeds,
		EstSpread: r.EstSpread,
		NumRRSets: r.NumRRSets,
		IO:        ioStats(r.IO),
		Elapsed:   r.Elapsed,
	}, nil
}

// QueryIRR answers q from the opened IRR index (Algorithm 4). Safe for
// concurrent use; the read lock is held for the duration of the query so
// Open/Close cannot pull the index file out from under it.
func (e *Engine) QueryIRR(q Query) (*Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("kbtim: engine is closed")
	}
	if e.irr == nil {
		return nil, fmt.Errorf("kbtim: no IRR index opened (call OpenIRRIndex)")
	}
	r, err := e.irr.Query(q.internal())
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:            r.Seeds,
		EstSpread:        r.EstSpread,
		NumRRSets:        r.NumRRSets,
		IO:               ioStats(r.IO),
		PartitionsLoaded: r.PartitionsLoaded,
		Elapsed:          r.Elapsed,
	}, nil
}

// EvaluateSpread Monte-Carlo-estimates the true expected targeted influence
// E[I^Q(S)] of a seed set under the engine's propagation model (the Table 7
// methodology). rounds of 10000 give ±1% on the scales used here.
func (e *Engine) EvaluateSpread(seeds []Seed, q Query, rounds int) (float64, error) {
	if rounds <= 0 {
		return 0, fmt.Errorf("kbtim: rounds must be positive")
	}
	if err := q.internal().Validate(e.ds.NumTopics()); err != nil {
		return 0, err
	}
	score := func(v uint32) float64 { return e.ds.profiles.Score(v, q.internal()) }
	return prop.EstimateWeightedSpread(e.ds.graph, e.model, seeds, score, rounds, rng.New(e.cfg.Seed^0xE7A1)), nil
}

// EvaluateReach Monte-Carlo-estimates the unweighted spread E[|I(S)|].
func (e *Engine) EvaluateReach(seeds []Seed, rounds int) (float64, error) {
	if rounds <= 0 {
		return 0, fmt.Errorf("kbtim: rounds must be positive")
	}
	return prop.EstimateSpread(e.ds.graph, e.model, seeds, rounds, rng.New(e.cfg.Seed^0xEEA2)), nil
}
