package kbtim

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// shardedOptions are small enough for CI but big enough that hash sharding
// over 8 topics actually spreads keywords across 4 shards.
func shardedOptions() Options {
	return Options{
		Epsilon:            0.5,
		K:                  10,
		MaxThetaPerKeyword: 4000,
		PartitionSize:      5,
		Seed:               11,
		DecodedCacheBytes:  1 << 20,
	}
}

func shardedDataset(t testing.TB) *Dataset {
	t.Helper()
	ds, err := GenerateDataset(DatasetSpec{
		Kind: TwitterLike, NumUsers: 300, AvgDegree: 6,
		NumTopics: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// buildSharded constructs an N-shard deployment (both index kinds attached
// per shard) plus a single-engine deployment over the same dataset and
// options, for parity checks.
func buildSharded(t testing.TB, ds *Dataset, shards int, mode ShardMode, perShardWorkers int) (*Sharded, *Engine) {
	t.Helper()
	dir := t.TempDir()

	single, err := NewEngine(ds, shardedOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	rrPath := filepath.Join(dir, "full.rr")
	irrPath := filepath.Join(dir, "full.irr")
	if _, err := single.BuildRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := single.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	if err := single.OpenRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if err := single.OpenIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}

	shardPath := func(kind string) func(int) string {
		return func(i int) string { return filepath.Join(dir, fmt.Sprintf("ads.%s.s%d", kind, i)) }
	}
	if _, err := single.BuildShardIndexes("rr", shards, mode, shardPath("rr")); err != nil {
		t.Fatal(err)
	}
	if _, err := single.BuildShardIndexes("irr", shards, mode, shardPath("irr")); err != nil {
		t.Fatal(err)
	}
	topicsBy, err := single.ShardTopics(shards, mode)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, shards)
	for i := range engines {
		if engines[i], err = NewEngine(ds, shardedOptions()); err != nil {
			t.Fatal(err)
		}
		e := engines[i]
		t.Cleanup(func() { e.Close() })
		if len(topicsBy[i]) == 0 {
			continue // empty shard: no index files, never routed to
		}
		if err := engines[i].OpenRRIndex(shardPath("rr")(i)); err != nil {
			t.Fatal(err)
		}
		if err := engines[i].OpenIRRIndex(shardPath("irr")(i)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSharded(engines, mode, perShardWorkers)
	if err != nil {
		t.Fatal(err)
	}
	return s, single
}

// shardedQueries covers the routing shapes: single topic (always one
// shard), pairs, and the full universe (guaranteed to span all non-empty
// shards in hash mode).
func shardedQueries() []Query {
	return []Query{
		{Topics: []int{0}, K: 3},
		{Topics: []int{3}, K: 2},
		{Topics: []int{0, 1}, K: 3},
		{Topics: []int{2, 5, 7}, K: 4},
		{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 5},
	}
}

// TestShardedHashParity is the acceptance gate: a 4-shard hash deployment
// returns EXACTLY the single-engine seeds and spreads for every query
// shape, on both strategies, and the aggregate stats views add up across
// the per-shard breakdown.
func TestShardedHashParity(t *testing.T) {
	ds := shardedDataset(t)
	s, single := buildSharded(t, ds, 4, ShardHash, 0)

	if got, want := s.IndexedKeywords(), single.IndexedKeywords(); !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded keyword universe %v, single %v", got, want)
	}
	spanned := false
	for _, q := range shardedQueries() {
		owners := map[int]bool{}
		for _, w := range q.Topics {
			owners[s.Owner(w)] = true
		}
		if len(owners) > 1 {
			spanned = true
		}
		for _, kind := range []string{"rr", "irr"} {
			var a, b *Result
			var err error
			if kind == "rr" {
				if a, err = single.QueryRR(q); err != nil {
					t.Fatal(err)
				}
				b, err = s.QueryRR(q)
			} else {
				if a, err = single.QueryIRR(q); err != nil {
					t.Fatal(err)
				}
				b, err = s.QueryIRR(q)
			}
			if err != nil {
				t.Fatalf("%s %v: %v", kind, q, err)
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.EstSpread != b.EstSpread || a.NumRRSets != b.NumRRSets {
				t.Fatalf("%s %v diverged:\n single  %v / %v\n sharded %v / %v",
					kind, q, a.Seeds, a.EstSpread, b.Seeds, b.EstSpread)
			}
			if kind == "irr" && a.PartitionsLoaded != b.PartitionsLoaded {
				t.Fatalf("irr %v consumed %d partitions sharded vs %d single", q, b.PartitionsLoaded, a.PartitionsLoaded)
			}
		}
	}
	if !spanned {
		t.Fatal("no test query spanned shards; parity did not exercise scatter-gather")
	}

	// Aggregate stats must equal the per-shard sum.
	perShard := s.ShardStats()
	if len(perShard) != 4 {
		t.Fatalf("%d shard stats", len(perShard))
	}
	var sumHits, sumMisses int64
	kwTotal := 0
	for _, st := range perShard {
		sumHits += st.RRDecoded.Hits + st.IRRDecoded.Hits
		sumMisses += st.RRDecoded.Misses + st.IRRDecoded.Misses
		kwTotal += st.Keywords
	}
	aggRR, aggIRR := s.DecodedCacheStats()
	if aggRR.Hits+aggIRR.Hits != sumHits || aggRR.Misses+aggIRR.Misses != sumMisses {
		t.Fatalf("aggregate decoded stats (%d/%d hits+misses) != shard sum (%d/%d)",
			aggRR.Hits+aggIRR.Hits, aggRR.Misses+aggIRR.Misses, sumHits, sumMisses)
	}
	if aggRR.Misses+aggIRR.Misses == 0 {
		t.Fatal("sharded queries never touched the decoded caches")
	}
	if kwTotal != len(single.IndexedKeywords()) {
		t.Fatalf("shards own %d keywords, universe has %d", kwTotal, len(single.IndexedKeywords()))
	}
}

// TestShardedReplicateParity: replicate mode round-robins whole queries
// across identical replicas, so every result matches the single engine and
// nothing ever scatters.
func TestShardedReplicateParity(t *testing.T) {
	ds := shardedDataset(t)
	s, single := buildSharded(t, ds, 2, ShardReplicate, 0)
	for _, q := range shardedQueries() {
		a, err := single.QueryIRR(q)
		if err != nil {
			t.Fatal(err)
		}
		// Twice per query so the round-robin cursor visits both replicas.
		for i := 0; i < 2; i++ {
			b, err := s.QueryIRR(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.EstSpread != b.EstSpread {
				t.Fatalf("replicate %v diverged on attempt %d", q, i)
			}
		}
	}
}

// TestShardedPerShardPools: bounded per-shard pools under concurrent mixed
// single/scatter traffic — every result stays correct and the pools drain
// back to zero in-flight.
func TestShardedPerShardPools(t *testing.T) {
	ds := shardedDataset(t)
	s, single := buildSharded(t, ds, 2, ShardHash, 1)
	queries := shardedQueries()
	base := make([]*Result, len(queries))
	for i, q := range queries {
		var err error
		if base[i], err = single.QueryIRR(q); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines, rounds = 6, 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				res, err := s.QueryIRR(queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(res.Seeds, base[qi].Seeds) {
					t.Errorf("query %d diverged under pooled concurrency", qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, st := range s.ShardStats() {
		if st.InFlight != 0 {
			t.Fatalf("shard %d reports %d in-flight after drain", st.Shard, st.InFlight)
		}
	}
}

// TestShardedValidation: constructor and build-path misuse fails loudly.
func TestShardedValidation(t *testing.T) {
	ds := shardedDataset(t)
	eng, err := NewEngine(ds, shardedOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := NewSharded(nil, ShardHash, 0); err == nil {
		t.Fatal("empty engine list accepted")
	}
	if _, err := NewSharded([]*Engine{eng, nil}, ShardHash, 0); err == nil {
		t.Fatal("nil shard engine accepted")
	}
	if _, err := NewSharded([]*Engine{eng}, ShardMode("bogus"), 0); err == nil {
		t.Fatal("bogus shard mode accepted")
	}
	if _, err := eng.BuildShardIndexes("bogus", 2, ShardHash, func(int) string { return "" }); err == nil {
		t.Fatal("bogus index kind accepted")
	}
	if _, err := eng.ShardTopics(0, ShardHash); err == nil {
		t.Fatal("zero shard count accepted")
	}

	// A sharded query for an unserved keyword fails like a single engine's.
	s, err := NewSharded([]*Engine{eng}, ShardHash, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryRR(Query{Topics: []int{0}, K: 1}); err == nil {
		t.Fatal("query against shard with no index succeeded")
	}
	if _, err := s.QueryRR(Query{K: 1}); err == nil {
		t.Fatal("empty topic set accepted")
	}
}
