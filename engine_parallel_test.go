package kbtim

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEngineParallelOptionsParity: QueryParallelism and CacheShards must
// change neither seeds nor spreads, with every cache tier on.
func TestEngineParallelOptionsParity(t *testing.T) {
	plain := concurrentEngine(t, exampleOptions())
	opts := exampleOptions()
	opts.CacheBytes = 1 << 20
	opts.DecodedCacheBytes = 1 << 20
	opts.CacheShards = 4
	opts.QueryParallelism = 3
	turbo := concurrentEngine(t, opts)

	queries := []Query{
		{Topics: []int{0}, K: 2},
		{Topics: []int{0, 1}, K: 3},
		{Topics: []int{1, 2, 3}, K: 4},
	}
	for _, q := range queries {
		for _, kind := range []string{"rr", "irr"} {
			var a, b *Result
			var err error
			if kind == "rr" {
				a, err = plain.QueryRR(q)
				if err == nil {
					b, err = turbo.QueryRR(q)
				}
			} else {
				a, err = plain.QueryIRR(q)
				if err == nil {
					b, err = turbo.QueryIRR(q)
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.EstSpread != b.EstSpread {
				t.Fatalf("%s %v diverged under parallel options: %v/%v vs %v/%v",
					kind, q, a.Seeds, a.EstSpread, b.Seeds, b.EstSpread)
			}
		}
	}
	rrDec, irrDec := turbo.DecodedCacheStats()
	if rrDec.Misses == 0 || irrDec.Misses == 0 {
		t.Fatalf("decoded cache unused: rr %+v irr %+v", rrDec, irrDec)
	}
}

// TestEngineValidatesParallelOptions: negative knobs are rejected.
func TestEngineValidatesParallelOptions(t *testing.T) {
	ds := exampleDataset(t)
	if _, err := NewEngine(ds, Options{CacheShards: -1}); err == nil {
		t.Fatal("negative CacheShards accepted")
	}
	if _, err := NewEngine(ds, Options{QueryParallelism: -1}); err == nil {
		t.Fatal("negative QueryParallelism accepted")
	}
}

// TestEngineParallelQueriesEvictionAndSwap is the acceptance gate for the
// parallel pipeline: concurrent parallel-loading queries, a decoded cache
// small enough to evict constantly (sharded, adaptively rebalanced), and
// index hot-swaps all running at once under -race, with every result checked
// against the serial baseline.
func TestEngineParallelQueriesEvictionAndSwap(t *testing.T) {
	opts := exampleOptions()
	opts.CacheBytes = 1 << 18
	opts.DecodedCacheBytes = 1 << 12 // tiny: queries evict each other's artifacts
	opts.CacheShards = 4
	opts.QueryParallelism = 3
	eng := concurrentEngine(t, opts)

	dir := t.TempDir()
	rrPath := filepath.Join(dir, "swap.rr")
	irrPath := filepath.Join(dir, "swap.irr")
	if _, err := eng.BuildRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}

	queries := []Query{
		{Topics: []int{0, 1}, K: 3},
		{Topics: []int{1, 2, 3}, K: 4},
		{Topics: []int{0, 2}, K: 2},
	}
	type baseline struct{ rr, irr *Result }
	base := make([]baseline, len(queries))
	for i, q := range queries {
		rr, err := eng.QueryRR(q)
		if err != nil {
			t.Fatal(err)
		}
		irr, err := eng.QueryIRR(q)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = baseline{rr: rr, irr: irr}
	}

	var stop atomic.Bool
	var wg, swapWG sync.WaitGroup
	// Swapper: re-opens both indexes (same deterministic build → same
	// results) while queries are in flight.
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; !stop.Load(); i++ {
			if err := eng.OpenRRIndex(rrPath); err != nil {
				t.Errorf("swap rr: %v", err)
				return
			}
			if err := eng.OpenIRRIndex(irrPath); err != nil {
				t.Errorf("swap irr: %v", err)
				return
			}
		}
	}()
	const goroutines, rounds = 8, 10
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				q := queries[qi]
				irr, err := eng.QueryIRR(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(irr.Seeds, base[qi].irr.Seeds) || irr.EstSpread != base[qi].irr.EstSpread {
					t.Errorf("IRR diverged for %v under swap+eviction", q)
					return
				}
				rr, err := eng.QueryRR(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(rr.Seeds, base[qi].rr.Seeds) || rr.EstSpread != base[qi].rr.EstSpread {
					t.Errorf("RR diverged for %v under swap+eviction", q)
					return
				}
			}
		}(g)
	}
	wg.Wait() // queriers first, so swaps overlap queries the whole time
	stop.Store(true)
	swapWG.Wait()
}

// TestShardedCloseAndSwapRace runs the sharded router's lifecycle gauntlet
// under -race: scatter and single-shard queries in flight while every shard
// engine is hot-swapped, then Close lands mid-traffic. In-flight queries
// must either return their exact baseline result (they pinned handles on
// every involved shard) or fail with the engine-closed error — never a
// partial result, a hang, or a race.
func TestShardedCloseAndSwapRace(t *testing.T) {
	ds := shardedDataset(t)
	s, single := buildSharded(t, ds, 2, ShardHash, 0)

	dir := t.TempDir()
	shardPath := func(kind string, i int) string {
		return filepath.Join(dir, fmt.Sprintf("swap.%s.s%d", kind, i))
	}
	for _, kind := range []string{"rr", "irr"} {
		if _, err := single.BuildShardIndexes(kind, 2, ShardHash, func(i int) string { return shardPath(kind, i) }); err != nil {
			t.Fatal(err)
		}
	}
	topicsBy, err := single.ShardTopics(2, ShardHash)
	if err != nil {
		t.Fatal(err)
	}

	queries := shardedQueries()
	type baseline struct{ rr, irr *Result }
	base := make([]baseline, len(queries))
	for i, q := range queries {
		rr, err := s.QueryRR(q)
		if err != nil {
			t.Fatal(err)
		}
		irr, err := s.QueryIRR(q)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = baseline{rr: rr, irr: irr}
	}

	var stop atomic.Bool
	var swapWG sync.WaitGroup
	// Swapper: hot-swaps both indexes of every shard engine (same
	// deterministic builds → same results) until the close lands; a swap
	// against an already-closed engine must report the closed error, not
	// corrupt anything.
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for !stop.Load() {
			for sh := 0; sh < s.NumShards(); sh++ {
				if len(topicsBy[sh]) == 0 {
					continue
				}
				if err := s.Shard(sh).OpenRRIndex(shardPath("rr", sh)); err != nil && !isClosedErr(err) {
					t.Errorf("swap rr shard %d: %v", sh, err)
					return
				}
				if err := s.Shard(sh).OpenIRRIndex(shardPath("irr", sh)); err != nil && !isClosedErr(err) {
					t.Errorf("swap irr shard %d: %v", sh, err)
					return
				}
			}
		}
	}()

	var qWG sync.WaitGroup
	const goroutines, rounds = 8, 12
	closeAfter := goroutines * rounds / 3 // Close lands in the middle of traffic
	var issued atomic.Int64
	var closeOnce sync.Once
	for g := 0; g < goroutines; g++ {
		qWG.Add(1)
		go func(g int) {
			defer qWG.Done()
			for i := 0; i < rounds; i++ {
				if issued.Add(1) == int64(closeAfter) {
					closeOnce.Do(func() {
						if err := s.Close(); err != nil {
							t.Errorf("close: %v", err)
						}
					})
				}
				qi := (g + i) % len(queries)
				q := queries[qi]
				rr, err := s.QueryRR(q)
				switch {
				case err != nil:
					if !isClosedErr(err) {
						t.Errorf("rr %v: %v", q, err)
						return
					}
				case !reflect.DeepEqual(rr.Seeds, base[qi].rr.Seeds) || rr.EstSpread != base[qi].rr.EstSpread:
					t.Errorf("rr %v diverged under swap+close", q)
					return
				}
				irr, err := s.QueryIRR(q)
				switch {
				case err != nil:
					if !isClosedErr(err) {
						t.Errorf("irr %v: %v", q, err)
						return
					}
				case !reflect.DeepEqual(irr.Seeds, base[qi].irr.Seeds) || irr.EstSpread != base[qi].irr.EstSpread:
					t.Errorf("irr %v diverged under swap+close", q)
					return
				}
			}
		}(g)
	}
	qWG.Wait()
	stop.Store(true)
	swapWG.Wait()

	// After Close the router rejects everything immediately (and Close
	// stays idempotent through the router).
	if _, err := s.QueryIRR(queries[0]); err == nil || !isClosedErr(err) {
		t.Fatalf("post-close query: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// isClosedErr matches the engine-closed failure in-flight queries may
// legitimately observe once Close lands.
func isClosedErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "engine is closed")
}
