package kbtim

import (
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestEngineParallelOptionsParity: QueryParallelism and CacheShards must
// change neither seeds nor spreads, with every cache tier on.
func TestEngineParallelOptionsParity(t *testing.T) {
	plain := concurrentEngine(t, exampleOptions())
	opts := exampleOptions()
	opts.CacheBytes = 1 << 20
	opts.DecodedCacheBytes = 1 << 20
	opts.CacheShards = 4
	opts.QueryParallelism = 3
	turbo := concurrentEngine(t, opts)

	queries := []Query{
		{Topics: []int{0}, K: 2},
		{Topics: []int{0, 1}, K: 3},
		{Topics: []int{1, 2, 3}, K: 4},
	}
	for _, q := range queries {
		for _, kind := range []string{"rr", "irr"} {
			var a, b *Result
			var err error
			if kind == "rr" {
				a, err = plain.QueryRR(q)
				if err == nil {
					b, err = turbo.QueryRR(q)
				}
			} else {
				a, err = plain.QueryIRR(q)
				if err == nil {
					b, err = turbo.QueryIRR(q)
				}
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Seeds, b.Seeds) || a.EstSpread != b.EstSpread {
				t.Fatalf("%s %v diverged under parallel options: %v/%v vs %v/%v",
					kind, q, a.Seeds, a.EstSpread, b.Seeds, b.EstSpread)
			}
		}
	}
	rrDec, irrDec := turbo.DecodedCacheStats()
	if rrDec.Misses == 0 || irrDec.Misses == 0 {
		t.Fatalf("decoded cache unused: rr %+v irr %+v", rrDec, irrDec)
	}
}

// TestEngineValidatesParallelOptions: negative knobs are rejected.
func TestEngineValidatesParallelOptions(t *testing.T) {
	ds := exampleDataset(t)
	if _, err := NewEngine(ds, Options{CacheShards: -1}); err == nil {
		t.Fatal("negative CacheShards accepted")
	}
	if _, err := NewEngine(ds, Options{QueryParallelism: -1}); err == nil {
		t.Fatal("negative QueryParallelism accepted")
	}
}

// TestEngineParallelQueriesEvictionAndSwap is the acceptance gate for the
// parallel pipeline: concurrent parallel-loading queries, a decoded cache
// small enough to evict constantly (sharded, adaptively rebalanced), and
// index hot-swaps all running at once under -race, with every result checked
// against the serial baseline.
func TestEngineParallelQueriesEvictionAndSwap(t *testing.T) {
	opts := exampleOptions()
	opts.CacheBytes = 1 << 18
	opts.DecodedCacheBytes = 1 << 12 // tiny: queries evict each other's artifacts
	opts.CacheShards = 4
	opts.QueryParallelism = 3
	eng := concurrentEngine(t, opts)

	dir := t.TempDir()
	rrPath := filepath.Join(dir, "swap.rr")
	irrPath := filepath.Join(dir, "swap.irr")
	if _, err := eng.BuildRRIndex(rrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}

	queries := []Query{
		{Topics: []int{0, 1}, K: 3},
		{Topics: []int{1, 2, 3}, K: 4},
		{Topics: []int{0, 2}, K: 2},
	}
	type baseline struct{ rr, irr *Result }
	base := make([]baseline, len(queries))
	for i, q := range queries {
		rr, err := eng.QueryRR(q)
		if err != nil {
			t.Fatal(err)
		}
		irr, err := eng.QueryIRR(q)
		if err != nil {
			t.Fatal(err)
		}
		base[i] = baseline{rr: rr, irr: irr}
	}

	var stop atomic.Bool
	var wg, swapWG sync.WaitGroup
	// Swapper: re-opens both indexes (same deterministic build → same
	// results) while queries are in flight.
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		for i := 0; !stop.Load(); i++ {
			if err := eng.OpenRRIndex(rrPath); err != nil {
				t.Errorf("swap rr: %v", err)
				return
			}
			if err := eng.OpenIRRIndex(irrPath); err != nil {
				t.Errorf("swap irr: %v", err)
				return
			}
		}
	}()
	const goroutines, rounds = 8, 10
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				qi := (g + i) % len(queries)
				q := queries[qi]
				irr, err := eng.QueryIRR(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(irr.Seeds, base[qi].irr.Seeds) || irr.EstSpread != base[qi].irr.EstSpread {
					t.Errorf("IRR diverged for %v under swap+eviction", q)
					return
				}
				rr, err := eng.QueryRR(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(rr.Seeds, base[qi].rr.Seeds) || rr.EstSpread != base[qi].rr.EstSpread {
					t.Errorf("RR diverged for %v under swap+eviction", q)
					return
				}
			}
		}(g)
	}
	wg.Wait() // queriers first, so swaps overlap queries the whole time
	stop.Store(true)
	swapWG.Wait()
}
