// Real-time serving: the paper's headline claim is that index-based KB-TIM
// query processing turns minutes of online sampling into interactive
// latencies. This example builds both disk indexes once, then serves a
// stream of advertisement queries and reports per-method latency
// percentiles — including one (deliberately slow) online WRIS query for
// contrast.
//
// Run with:
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"kbtim"
)

func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	log.SetFlags(0)

	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind:      kbtim.TwitterLike,
		NumUsers:  30000,
		AvgDegree: 10,
		NumTopics: 24,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            0.35,
		K:                  50,
		MaxThetaPerKeyword: 150000,
		Seed:               3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	dir, err := os.MkdirTemp("", "kbtim-realtime")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("building indexes (offline) ...")
	startBuild := time.Now()
	if _, err := eng.BuildRRIndex(filepath.Join(dir, "ads.rr")); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.BuildIRRIndex(filepath.Join(dir, "ads.irr")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %v\n\n", time.Since(startBuild).Round(time.Millisecond))
	if err := eng.OpenRRIndex(filepath.Join(dir, "ads.rr")); err != nil {
		log.Fatal(err)
	}
	if err := eng.OpenIRRIndex(filepath.Join(dir, "ads.irr")); err != nil {
		log.Fatal(err)
	}

	// A stream of 60 advertisements with 1–3 keywords each.
	var queries []kbtim.Query
	for i := 0; i < 60; i++ {
		topics := []int{i % 24}
		if i%2 == 0 {
			topics = append(topics, (i*7+3)%24)
		}
		if i%3 == 0 {
			topics = append(topics, (i*5+11)%24)
		}
		topics = dedup(topics)
		queries = append(queries, kbtim.Query{Topics: topics, K: 10})
	}

	var rrLat, irrLat []time.Duration
	for _, q := range queries {
		rrRes, err := eng.QueryRR(q)
		if err != nil {
			log.Fatal(err)
		}
		rrLat = append(rrLat, rrRes.Elapsed)
		irrRes, err := eng.QueryIRR(q)
		if err != nil {
			log.Fatal(err)
		}
		irrLat = append(irrLat, irrRes.Elapsed)
	}
	wrisRes, err := eng.QueryWRIS(queries[0])
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d queries\n", len(queries))
	fmt.Printf("  %-12s p50 %-10v p95 %-10v max %v\n", "RR index:",
		percentile(rrLat, 0.5).Round(time.Microsecond),
		percentile(rrLat, 0.95).Round(time.Microsecond),
		percentile(rrLat, 1).Round(time.Microsecond))
	fmt.Printf("  %-12s p50 %-10v p95 %-10v max %v\n", "IRR index:",
		percentile(irrLat, 0.5).Round(time.Microsecond),
		percentile(irrLat, 0.95).Round(time.Microsecond),
		percentile(irrLat, 1).Round(time.Microsecond))
	fmt.Printf("  %-12s %v for ONE query (all sampling online)\n",
		"WRIS:", wrisRes.Elapsed.Round(time.Millisecond))
	fmt.Printf("\nonline/index speedup: %.0fx over RR's p50\n",
		float64(wrisRes.Elapsed)/float64(percentile(rrLat, 0.5)))
}

func dedup(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
