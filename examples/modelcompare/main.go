// Model comparison: §6.6 of the paper runs KB-TIM under both the
// independent cascade (IC) and linear threshold (LT) propagation models and
// inspects how the returned influencers differ. This example mirrors that
// study: the same advertisements are answered under both models and the
// seed overlap plus per-model spreads are reported.
//
// Run with:
//
//	go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"

	"kbtim"
)

func main() {
	log.SetFlags(0)

	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind:      kbtim.NewsLike,
		NumUsers:  10000,
		AvgDegree: 3,
		NumTopics: 16,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := kbtim.Options{
		Epsilon:            0.3,
		K:                  50,
		MaxThetaPerKeyword: 100000,
		Seed:               11,
	}
	optsIC := opts
	optsIC.Model = kbtim.IC
	optsLT := opts
	optsLT.Model = kbtim.LT

	engIC, err := kbtim.NewEngine(ds, optsIC)
	if err != nil {
		log.Fatal(err)
	}
	engLT, err := kbtim.NewEngine(ds, optsLT)
	if err != nil {
		log.Fatal(err)
	}

	queries := []kbtim.Query{
		{Topics: []int{0}, K: 8},       // "software"
		{Topics: []int{4}, K: 8},       // "journal"
		{Topics: []int{1, 6, 9}, K: 8}, // a broader campaign
	}
	for _, q := range queries {
		ic, err := engIC.QueryWRIS(q)
		if err != nil {
			log.Fatal(err)
		}
		lt, err := engLT.QueryWRIS(q)
		if err != nil {
			log.Fatal(err)
		}
		inIC := map[kbtim.Seed]bool{}
		for _, s := range ic.Seeds {
			inIC[s] = true
		}
		overlap := 0
		for _, s := range lt.Seeds {
			if inIC[s] {
				overlap++
			}
		}
		icSpread, err := engIC.EvaluateSpread(ic.Seeds, q, 2000)
		if err != nil {
			log.Fatal(err)
		}
		ltSpread, err := engLT.EvaluateSpread(lt.Seeds, q, 2000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query topics %v, k=%d\n", q.Topics, q.K)
		fmt.Printf("  IC seeds: %v (targeted spread %.1f)\n", ic.Seeds, icSpread)
		fmt.Printf("  LT seeds: %v (targeted spread %.1f)\n", lt.Seeds, ltSpread)
		fmt.Printf("  seed overlap: %d/%d\n\n", overlap, q.K)
	}
}
