// Quickstart: generate a synthetic social network, build the incremental
// IRR index, and answer a KB-TIM query in milliseconds.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kbtim"
)

func main() {
	log.SetFlags(0)

	// A twitter-like graph: 20k users, average degree 8, 32 topics.
	fmt.Println("generating dataset ...")
	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind:      kbtim.TwitterLike,
		NumUsers:  20000,
		AvgDegree: 8,
		NumTopics: 32,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d users, %d edges (avg degree %.1f), %d topics\n",
		ds.NumUsers(), ds.NumEdges(), ds.AvgDegree(), ds.NumTopics())

	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            0.3, // paper uses 0.1; 0.3 keeps this demo snappy
		K:                  50,
		MaxThetaPerKeyword: 200000,
		Seed:               42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	dir, err := os.MkdirTemp("", "kbtim-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("building IRR index (offline, once per dataset) ...")
	report, err := eng.BuildIRRIndex(filepath.Join(dir, "ads.irr"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d keywords, %d RR sets, %.1f MB, built in %v\n",
		report.Keywords, report.SumTheta,
		float64(report.Bytes)/(1<<20), report.Elapsed.Round(1e6))

	if err := eng.OpenIRRIndex(filepath.Join(dir, "ads.irr")); err != nil {
		log.Fatal(err)
	}

	// An advertisement targeting topics 2 and 7, asking for 10 seeds.
	q := kbtim.Query{Topics: []int{2, 7}, K: 10}
	res, err := eng.QueryIRR(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %v answered in %v (loaded %d RR sets, %d partition I/Os)\n",
		q.Topics, res.Elapsed.Round(1e4), res.NumRRSets, res.PartitionsLoaded)
	fmt.Printf("  seeds: %v\n", res.Seeds)
	fmt.Printf("  estimated targeted influence: %.2f\n", res.EstSpread)

	// Verify with an independent Monte-Carlo simulation.
	mc, err := eng.EvaluateSpread(res.Seeds, q, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Monte-Carlo check:            %.2f\n", mc)
}
