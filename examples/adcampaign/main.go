// Ad campaign: shows why targeted influence maximization matters. Several
// advertisements with different keyword profiles are planned over the same
// social network; the classic (non-targeted) RIS algorithm returns one
// fixed celebrity list for all of them, while KB-TIM picks per-ad seeds
// that reach the relevant audience — the paper's Table 8 phenomenon.
//
// Run with:
//
//	go run ./examples/adcampaign
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kbtim"
)

// The campaign's advertisements: keyword sets over a 16-topic space.
var ads = []struct {
	name   string
	topics []int
}{
	{"sports-drink launch", []int{0, 5}},
	{"indie-game preorder", []int{3, 9}},
	{"luxury-car lease", []int{11, 14}},
}

func main() {
	log.SetFlags(0)

	ds, err := kbtim.GenerateDataset(kbtim.DatasetSpec{
		Kind:      kbtim.TwitterLike,
		NumUsers:  15000,
		AvgDegree: 8,
		NumTopics: 16,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            0.3,
		K:                  50,
		MaxThetaPerKeyword: 150000,
		Seed:               7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	dir, err := os.MkdirTemp("", "kbtim-campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "campaign.rr")
	if _, err := eng.BuildRRIndex(path); err != nil {
		log.Fatal(err)
	}
	if err := eng.OpenRRIndex(path); err != nil {
		log.Fatal(err)
	}

	// The non-targeted baseline: same seeds for every ad.
	const k = 8
	ris, err := eng.QueryRIS(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic RIS (target-blind) seeds, reused for every ad:\n  %v\n\n", ris.Seeds)

	for _, ad := range ads {
		q := kbtim.Query{Topics: ad.topics, K: k}
		res, err := eng.QueryRR(q)
		if err != nil {
			log.Fatal(err)
		}
		targeted, err := eng.EvaluateSpread(res.Seeds, q, 2000)
		if err != nil {
			log.Fatal(err)
		}
		blind, err := eng.EvaluateSpread(ris.Seeds, q, 2000)
		if err != nil {
			log.Fatal(err)
		}
		overlap := 0
		inRIS := map[kbtim.Seed]bool{}
		for _, s := range ris.Seeds {
			inRIS[s] = true
		}
		for _, s := range res.Seeds {
			if inRIS[s] {
				overlap++
			}
		}
		fmt.Printf("%-22s topics %v\n", ad.name, ad.topics)
		fmt.Printf("  KB-TIM seeds: %v (%.0f%% overlap with RIS)\n",
			res.Seeds, 100*float64(overlap)/float64(k))
		fmt.Printf("  targeted influence: KB-TIM %.1f vs target-blind %.1f (%.2fx)\n\n",
			targeted, blind, targeted/blind)
	}
}
