package kbtim_test

import (
	"fmt"
	"os"
	"path/filepath"

	"kbtim"
)

// Example demonstrates the end-to-end KB-TIM flow: build a disk index
// offline, then answer advertisement queries in real time.
func Example() {
	// The paper's Figure 1 running example: 7 users, 4 topics.
	ds, err := kbtim.NewDataset(7, 4,
		[]kbtim.Edge{
			{From: 4, To: 0}, {From: 4, To: 1}, {From: 6, To: 1},
			{From: 4, To: 2}, {From: 1, To: 2},
			{From: 1, To: 3}, {From: 5, To: 3},
		},
		[][3]float64{
			{0, 0, 0.6}, {1, 0, 0.5}, {2, 0, 0.5}, {4, 0, 0.3}, // topic 0 = "music"
			{1, 1, 0.5}, {6, 1, 1.0}, // topic 1 = "book"
		})
	if err != nil {
		panic(err)
	}
	eng, err := kbtim.NewEngine(ds, kbtim.Options{
		Epsilon:            0.3,
		K:                  5,
		MaxThetaPerKeyword: 20000,
		Seed:               17,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	dir, err := os.MkdirTemp("", "kbtim-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ads.irr")
	if _, err := eng.BuildIRRIndex(path); err != nil {
		panic(err)
	}
	if err := eng.OpenIRRIndex(path); err != nil {
		panic(err)
	}

	res, err := eng.QueryIRR(kbtim.Query{Topics: []int{0}, K: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d seeds selected for the music advertisement\n", len(res.Seeds))
	// Output: 2 seeds selected for the music advertisement
}
