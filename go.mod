module kbtim

go 1.24
