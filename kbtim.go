// Package kbtim is a Go implementation of Keyword-Based Targeted Influence
// Maximization (KB-TIM) for online advertisements, reproducing
//
//	Yuchen Li, Dongxiang Zhang, Kian-Lee Tan.
//	"Real-time Targeted Influence Maximization for Online Advertisements."
//	PVLDB 8(10): 1070–1081, 2015.
//
// A KB-TIM query finds, for an advertisement described by a weighted
// keyword set, the k seed users maximizing the expected influence over the
// users relevant to that advertisement (the targeted spread
// E[I^Q(S)] = Σ_v p(S→v)·φ(v,Q), where φ is tf-idf relevance).
//
// Three query-processing strategies are provided, all carrying the paper's
// (1−1/e−ε) approximation guarantee:
//
//   - WRIS — online weighted reverse-influence-set sampling (Theorem 2).
//     Accurate but slow: every query pays the full sampling cost.
//   - RR index — per-keyword RR sets pre-sampled offline with
//     discriminative probabilities ps(v,w) and stored on disk; a query
//     merges θ^Q·p_w sets per keyword and runs greedy max coverage
//     (Algorithms 1–2).
//   - IRR index — the RR index reorganized for incremental access: inverted
//     lists sorted by influence and partitioned, consumed by an NRA-style
//     top-k aggregation that stops as soon as the next seed is provably
//     best (Algorithms 3–4; returns the same coverage scores as RR,
//     Theorem 3).
//
// # Quickstart
//
//	ds, _ := kbtim.GenerateDataset(kbtim.DatasetSpec{
//		Kind: kbtim.TwitterLike, NumUsers: 50000, AvgDegree: 10,
//		NumTopics: 64, Seed: 1,
//	})
//	eng, _ := kbtim.NewEngine(ds, kbtim.Options{Epsilon: 0.3, K: 50})
//	_ = eng.BuildIRRIndex("ads.irr")
//	_ = eng.OpenIRRIndex("ads.irr")
//	res, _ := eng.QueryIRR(kbtim.Query{Topics: []int{3, 17}, K: 10})
//	fmt.Println(res.Seeds, res.EstSpread)
//
// # Serving
//
// An Engine is safe for concurrent use: one shared Engine serves any
// number of goroutines, and Options.CacheBytes adds an in-memory segment
// cache in front of the index files for repeated-keyword traffic.
// cmd/kbtim-serve exposes an Engine over HTTP/JSON behind a bounded worker
// pool and doubles as a closed-loop load driver. For horizontal scale on
// one box, Sharded partitions (or replicates) the keyword universe across
// N engines with per-shard worker pools and cache budgets, returning
// results identical to a single engine (see DESIGN.md §6.1).
//
// See examples/ for runnable programs and DESIGN.md for the full mapping
// between the paper and this repository, the index file formats, and the
// concurrency + cache architecture.
package kbtim

import (
	"fmt"

	"kbtim/internal/graph"
	"kbtim/internal/prop"
	"kbtim/internal/topic"
)

// Query is a KB-TIM query: the advertisement's keyword set Q.T (topic IDs)
// and the seed budget Q.k.
type Query struct {
	// Topics is the advertisement keyword set Q.T (distinct topic IDs).
	Topics []int
	// K is Q.k, the number of seed users to select.
	K int
}

func (q Query) internal() topic.Query { return topic.Query{Topics: q.Topics, K: q.K} }

// Model selects the influence-propagation model.
type Model string

// Supported propagation models.
const (
	// IC is the independent cascade model with p(e)=1/N_v (§2.1).
	IC Model = "IC"
	// LT is the linear threshold model with uniform normalized weights.
	LT Model = "LT"
)

func (m Model) internal() (prop.Model, error) {
	switch m {
	case IC, "":
		return prop.IC{}, nil
	case LT:
		return prop.LT{}, nil
	default:
		return nil, fmt.Errorf("kbtim: unknown model %q", string(m))
	}
}

// Seed is a selected seed user.
type Seed = uint32

// Edge is a directed "From influences To" edge, re-exported for graph
// construction.
type Edge = graph.Edge
