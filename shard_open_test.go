package kbtim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// openFDs counts this process's open file descriptors (Linux only; callers
// skip elsewhere). The fd table is the ground truth for "no leaked file
// handles" — Close bookkeeping can lie, /proc/self/fd cannot.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

// TestOpenShardedIndexesPartialFailure: when shard i's file is missing or
// corrupt, the open fails with a diagnosable error AND every engine already
// assembled — including the ones holding open shard files — is closed, so
// a failed open leaks no file handles.
func TestOpenShardedIndexesPartialFailure(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd counting reads /proc/self/fd")
	}
	ds := shardedDataset(t)
	dir := t.TempDir()
	builder, err := NewEngine(ds, shardedOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer builder.Close()
	irrPath := filepath.Join(dir, "ads.irr")
	if _, err := builder.BuildShardIndexes("irr", 2, ShardHash, func(i int) string {
		return ShardIndexPath(irrPath, i)
	}); err != nil {
		t.Fatal(err)
	}

	// Missing shard-1 file: shard 0 has already opened its index when the
	// failure hits.
	if err := os.Remove(ShardIndexPath(irrPath, 1)); err != nil {
		t.Fatal(err)
	}
	before := openFDs(t)
	s, err := OpenShardedIndexes(ds, shardedOptions(), "", irrPath, 2, ShardHash, 0)
	if err == nil {
		s.Close()
		t.Fatal("open succeeded with shard 1's file missing")
	}
	if !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "kbtim-build -shards 2") {
		t.Fatalf("error should name the shard and the rebuild command, got: %v", err)
	}
	if after := openFDs(t); after != before {
		t.Fatalf("failed open leaked file descriptors: %d before, %d after", before, after)
	}

	// Corrupt shard-1 file: same contract on the parse-failure path.
	if err := os.WriteFile(ShardIndexPath(irrPath, 1), []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	before = openFDs(t)
	if s, err = OpenShardedIndexes(ds, shardedOptions(), "", irrPath, 2, ShardHash, 0); err == nil {
		s.Close()
		t.Fatal("open succeeded with shard 1's file corrupt")
	}
	if after := openFDs(t); after != before {
		t.Fatalf("failed open (corrupt file) leaked file descriptors: %d before, %d after", before, after)
	}
}

// TestOpenShardedIndexesRoundTrip: the success path opens, answers, and
// closes without leaking descriptors, and matches kbtim-build's file
// naming end to end (replicate included: every shard opens the one full
// file).
func TestOpenShardedIndexesRoundTrip(t *testing.T) {
	ds := shardedDataset(t)
	dir := t.TempDir()
	builder, err := NewEngine(ds, shardedOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer builder.Close()
	irrPath := filepath.Join(dir, "ads.irr")
	if _, err := builder.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	if _, err := builder.BuildShardIndexes("irr", 2, ShardHash, func(i int) string {
		return ShardIndexPath(irrPath, i)
	}); err != nil {
		t.Fatal(err)
	}
	if err := builder.OpenIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	q := Query{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 4}
	want, err := builder.QueryIRR(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ShardMode{ShardHash, ShardReplicate} {
		s, err := OpenShardedIndexes(ds, shardedOptions(), "", irrPath, 2, mode, 0)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		got, err := s.QueryIRR(q)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(got.Seeds) != len(want.Seeds) || got.EstSpread != want.EstSpread {
			t.Fatalf("%s: got (%v, %v), want (%v, %v)", mode, got.Seeds, got.EstSpread, want.Seeds, want.EstSpread)
		}
		for i := range got.Seeds {
			if got.Seeds[i] != want.Seeds[i] || got.Marginals[i] != want.Marginals[i] {
				t.Fatalf("%s: seed/marginal %d diverged: (%d,%d) vs (%d,%d)",
					mode, i, got.Seeds[i], got.Marginals[i], want.Seeds[i], want.Marginals[i])
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", mode, err)
		}
	}
}

// TestShardedReplicateRoutingUnderConcurrentClose: replicate round-robin
// routing races Close — every query must either answer correctly or fail
// with the closed-engine error; nothing may panic, deadlock, or return a
// wrong answer (run under -race in CI).
func TestShardedReplicateRoutingUnderConcurrentClose(t *testing.T) {
	ds := shardedDataset(t)
	dir := t.TempDir()
	builder, err := NewEngine(ds, shardedOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer builder.Close()
	irrPath := filepath.Join(dir, "ads.irr")
	if _, err := builder.BuildIRRIndex(irrPath); err != nil {
		t.Fatal(err)
	}
	s, err := OpenShardedIndexes(ds, shardedOptions(), "", irrPath, 3, ShardReplicate, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Topics: []int{0, 1}, K: 3}
	want, err := s.QueryIRR(q)
	if err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				res, err := s.QueryIRR(q)
				if err != nil {
					if !strings.Contains(err.Error(), "closed") {
						t.Errorf("unexpected error racing Close: %v", err)
					}
					return // the deployment is closed for good; later queries only repeat this
				}
				if len(res.Seeds) != len(want.Seeds) || res.EstSpread != want.EstSpread {
					t.Errorf("replicate result diverged under Close race: %v/%v", res.Seeds, res.EstSpread)
					return
				}
			}
		}()
	}
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		<-start
		s.Close()
	}()
	close(start)
	wg.Wait()
	<-closed
	if _, err := s.QueryIRR(q); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("query after Close: got %v, want closed-engine error", err)
	}
}

// TestEngineQueryCtxCanceled: the engine-level ctx variants surface
// cancellation (the fine-grained boundary behavior is pinned in the index
// packages; here we pin the plumbing and the Sharded scatter path).
func TestEngineQueryCtxCanceled(t *testing.T) {
	ds := shardedDataset(t)
	s, single := buildSharded(t, ds, 2, ShardHash, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{Topics: []int{0, 1, 2, 3, 4, 5, 6, 7}, K: 3}
	if _, err := single.QueryIRRCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("engine irr: got %v, want context.Canceled", err)
	}
	if _, err := single.QueryRRCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("engine rr: got %v, want context.Canceled", err)
	}
	if _, err := s.QueryIRRCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded irr: got %v, want context.Canceled", err)
	}
	if _, err := s.QueryRRCtx(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded rr: got %v, want context.Canceled", err)
	}
}
