package kbtim

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"kbtim/internal/diskio"
	"kbtim/internal/irrindex"
	"kbtim/internal/objcache"
	"kbtim/internal/rrindex"
	"kbtim/internal/shardmap"
)

// ShardMode selects how a keyword universe is assigned to engine shards.
type ShardMode string

// Supported shard modes.
const (
	// ShardHash spreads keywords across shards by a stable integer hash of
	// the topic ID (the default).
	ShardHash ShardMode = "hash"
	// ShardRange assigns contiguous topic-ID blocks to shards.
	ShardRange ShardMode = "range"
	// ShardReplicate gives every shard the full universe; queries are
	// load-balanced round-robin across replicas and never scatter.
	ShardReplicate ShardMode = "replicate"
)

func (m ShardMode) internal() (shardmap.Mode, error) {
	if m == "" {
		return shardmap.Hash, nil
	}
	return shardmap.ParseMode(string(m))
}

// ShardStat is one shard's contribution to a sharded deployment's counters.
type ShardStat struct {
	// Shard is the shard index (the suffix of its index files).
	Shard int
	// Keywords is the number of topics the shard's attached indexes serve.
	Keywords int
	// InFlight is the number of queries currently reading from this shard
	// (counted whether or not a bounded per-shard pool is configured).
	InFlight int64
	// Cache tiers, per index kind, as in Engine.CacheStats /
	// Engine.DecodedCacheStats.
	RRCache    diskio.CacheStats
	IRRCache   diskio.CacheStats
	RRDecoded  objcache.Stats
	IRRDecoded objcache.Stats
}

// Sharded serves one logical keyword universe from N engine shards on one
// box. In hash/range mode each shard's indexes cover a disjoint keyword
// subset: a query whose topics co-locate on one shard takes the fast path
// (that engine answers it exactly as a single-engine deployment would), and
// a query spanning shards is answered by the exact cross-index merge
// (rrindex/irrindex QueryMulti), which returns bit-identical seeds,
// marginals, and spreads to a single full index — per-keyword build
// determinism makes shard payloads equal to the full index's, and the merge
// runs in query-keyword order. In replicate mode every shard holds the full
// index and queries round-robin across replicas.
//
// Each shard optionally has its own bounded worker pool: a query occupies
// one slot on every shard it reads from, acquired in ascending shard order
// so concurrent scatter queries cannot deadlock. Combined with per-engine
// cache budgets (the serving layer splits its global budget N ways), one
// shard's hot keywords cannot starve another's workers or evict another's
// cache — the workload isolation that motivates partitioning before
// distribution.
//
// A Sharded is safe for concurrent use, and the underlying Engines remain
// directly usable for hot swaps (OpenRRIndex/OpenIRRIndex during traffic).
type Sharded struct {
	engines  []*Engine
	sm       *shardmap.Map
	sems     []chan struct{} // per-shard worker pools; nil = unbounded
	inflight []atomic.Int64
	next     atomic.Uint64 // round-robin cursor for replicate routing
}

// NewSharded assembles a sharded deployment from per-shard engines (all
// over the same dataset). perShardWorkers bounds each shard's concurrent
// queries (<= 0 = unbounded). The engines' indexes must have been built
// with the matching mode's partition of the keyword universe (see
// Engine.BuildRRIndexTopics and shardmap.Partition); NewSharded checks
// coverage lazily — a query for a keyword the owning shard does not serve
// fails with "not indexed", exactly as on a single engine.
func NewSharded(engines []*Engine, mode ShardMode, perShardWorkers int) (*Sharded, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("kbtim: sharded deployment needs at least one engine")
	}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("kbtim: shard %d engine is nil", i)
		}
	}
	m, err := mode.internal()
	if err != nil {
		return nil, fmt.Errorf("kbtim: %w", err)
	}
	numTopics := engines[0].ds.NumTopics()
	numUsers := engines[0].ds.NumUsers()
	for i, e := range engines[1:] {
		if e.ds.NumTopics() != numTopics || e.ds.NumUsers() != numUsers {
			// Guard the single-shard fast path too: QueryMulti re-checks
			// headers on scatter, but a co-located query goes straight to
			// one engine and would silently answer from the wrong dataset.
			return nil, fmt.Errorf("kbtim: shard %d dataset (%d users, %d topics) differs from shard 0's (%d users, %d topics)",
				i+1, e.ds.NumUsers(), e.ds.NumTopics(), numUsers, numTopics)
		}
	}
	sm, err := shardmap.New(len(engines), m, numTopics)
	if err != nil {
		return nil, fmt.Errorf("kbtim: %w", err)
	}
	s := &Sharded{engines: engines, sm: sm, inflight: make([]atomic.Int64, len(engines))}
	if perShardWorkers > 0 {
		s.sems = make([]chan struct{}, len(engines))
		for i := range s.sems {
			s.sems[i] = make(chan struct{}, perShardWorkers)
		}
	}
	return s, nil
}

// NumShards returns N.
func (s *Sharded) NumShards() int { return len(s.engines) }

// Mode returns the keyword-assignment mode.
func (s *Sharded) Mode() ShardMode { return ShardMode(s.sm.Mode().String()) }

// Shard returns shard i's engine (for hot swaps and per-shard inspection).
func (s *Sharded) Shard(i int) *Engine { return s.engines[i] }

// Owner returns the shard owning a topic (ownership is shared in replicate
// mode; the returned shard is the deterministic default replica).
func (s *Sharded) Owner(topic int) int { return s.sm.Owner(topic) }

// Close closes every shard engine and returns the first error.
func (s *Sharded) Close() error {
	var first error
	for _, e := range s.engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// IndexedKeywords returns the sorted union of every shard's queryable
// topics (disjoint in hash/range mode, identical in replicate mode).
func (s *Sharded) IndexedKeywords() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range s.engines {
		for _, w := range e.IndexedKeywords() {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	if out == nil {
		return nil
	}
	sort.Ints(out)
	return out
}

// CacheStats returns the segment-cache counters summed across shards.
func (s *Sharded) CacheStats() (rr, irr diskio.CacheStats) {
	for _, e := range s.engines {
		r, i := e.CacheStats()
		rr = addCacheStats(rr, r)
		irr = addCacheStats(irr, i)
	}
	return rr, irr
}

// DecodedCacheStats returns the decoded-object-cache counters summed
// across shards.
func (s *Sharded) DecodedCacheStats() (rr, irr objcache.Stats) {
	for _, e := range s.engines {
		r, i := e.DecodedCacheStats()
		rr = rr.Add(r)
		irr = irr.Add(i)
	}
	return rr, irr
}

// ShardStats returns each shard's own counters (the per-shard breakdown of
// the aggregate CacheStats/DecodedCacheStats views).
func (s *Sharded) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.engines))
	for i, e := range s.engines {
		st := ShardStat{Shard: i, Keywords: len(e.IndexedKeywords()), InFlight: s.inflight[i].Load()}
		st.RRCache, st.IRRCache = e.CacheStats()
		st.RRDecoded, st.IRRDecoded = e.DecodedCacheStats()
		out[i] = st
	}
	return out
}

func addCacheStats(a, b diskio.CacheStats) diskio.CacheStats {
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Entries += b.Entries
	a.BytesCached += b.BytesCached
	a.BudgetBytes += b.BudgetBytes
	return a
}

// involved returns the shards a query must touch, ascending. Replicate mode
// rotates across replicas; hash/range modes return the distinct owners of
// the query's topics.
func (s *Sharded) involved(topics []int) []int {
	if s.sm.Mode() == shardmap.Replicate {
		return []int{int(s.next.Add(1)-1) % len(s.engines)}
	}
	return s.sm.Shards(topics)
}

// acquire takes one worker slot on every involved shard, in ascending shard
// order (the total order makes concurrent multi-shard acquisition
// deadlock-free), and returns the matching release. The waits honor ctx: a
// canceled query releases every slot it already took and returns ctx.Err()
// instead of occupying a shard worker it no longer wants — the same
// abandonment semantics as kbtim-serve's global-pool wait, one layer down.
func (s *Sharded) acquire(ctx context.Context, shards []int) (func(), error) {
	for i, sh := range shards {
		if s.sems != nil {
			select {
			case s.sems[sh] <- struct{}{}:
			case <-ctx.Done():
				for _, got := range shards[:i] {
					s.inflight[got].Add(-1)
					<-s.sems[got]
				}
				return nil, ctx.Err()
			}
		}
		s.inflight[sh].Add(1)
	}
	return func() {
		for _, sh := range shards {
			s.inflight[sh].Add(-1)
			if s.sems != nil {
				<-s.sems[sh]
			}
		}
	}, nil
}

// QueryRR answers q from the shards' RR indexes — fast path when one shard
// owns every topic, exact scatter-gather merge otherwise. Results are
// identical to a single-engine deployment over the full index.
func (s *Sharded) QueryRR(q Query) (*Result, error) {
	return s.QueryRRCtx(context.Background(), q)
}

// QueryRRCtx is QueryRR with cancellation, honored both while waiting for
// per-shard worker slots and at every keyword-load boundary of the query
// itself.
func (s *Sharded) QueryRRCtx(ctx context.Context, q Query) (*Result, error) {
	return s.QueryRRStreamCtx(ctx, q, StreamOptions{})
}

// QueryRRStreamCtx is QueryRRCtx with anytime hooks — the fast path streams
// from the owning engine, a spanning query streams from the exact
// cross-index merge, with identical emissions either way.
func (s *Sharded) QueryRRStreamCtx(ctx context.Context, q Query, so StreamOptions) (*Result, error) {
	tq := q.internal()
	shards := s.involved(tq.Topics)
	if len(shards) == 0 {
		return nil, fmt.Errorf("kbtim: query needs at least one keyword")
	}
	release, err := s.acquire(ctx, shards)
	if err != nil {
		return nil, err
	}
	defer release()
	if len(shards) == 1 {
		return s.engines[shards[0]].QueryRRStreamCtx(ctx, q, so)
	}
	handles, done, err := s.pin(shards, (*Engine).acquireRR)
	if err != nil {
		return nil, err
	}
	defer done()
	r, err := rrindex.QueryMultiStreamCtx(ctx, func(w int) *rrindex.Index {
		if h := handles[s.sm.Owner(w)]; h != nil {
			return h.rr
		}
		return nil
	}, tq, so.internal())
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:     r.Seeds,
		Marginals: r.Marginals,
		EstSpread: r.EstSpread,
		NumRRSets: r.NumRRSets,
		IO:        ioStats(r.IO, r.DecodedHits, r.DecodedMisses),
		Partial:   r.Partial,
		Elapsed:   r.Elapsed,
	}, nil
}

// QueryIRR answers q from the shards' IRR indexes; routing and parity
// semantics match QueryRR's.
func (s *Sharded) QueryIRR(q Query) (*Result, error) {
	return s.QueryIRRCtx(context.Background(), q)
}

// QueryIRRCtx is QueryIRR with cancellation, honored both while waiting for
// per-shard worker slots and at every keyword-load and NRA partition-round
// boundary of the query itself.
func (s *Sharded) QueryIRRCtx(ctx context.Context, q Query) (*Result, error) {
	return s.QueryIRRStreamCtx(ctx, q, StreamOptions{})
}

// QueryIRRStreamCtx is QueryIRRCtx with anytime hooks; routing matches
// QueryRRStreamCtx's, and the NRA merge certifies (and so emits) seeds
// before every shard's partitions are loaded, exactly as on one engine.
func (s *Sharded) QueryIRRStreamCtx(ctx context.Context, q Query, so StreamOptions) (*Result, error) {
	tq := q.internal()
	shards := s.involved(tq.Topics)
	if len(shards) == 0 {
		return nil, fmt.Errorf("kbtim: query needs at least one keyword")
	}
	release, err := s.acquire(ctx, shards)
	if err != nil {
		return nil, err
	}
	defer release()
	if len(shards) == 1 {
		return s.engines[shards[0]].QueryIRRStreamCtx(ctx, q, so)
	}
	handles, done, err := s.pin(shards, (*Engine).acquireIRR)
	if err != nil {
		return nil, err
	}
	defer done()
	r, err := irrindex.QueryMultiStreamCtx(ctx, func(w int) *irrindex.Index {
		if h := handles[s.sm.Owner(w)]; h != nil {
			return h.irr
		}
		return nil
	}, tq, so.internal())
	if err != nil {
		return nil, err
	}
	return &Result{
		Seeds:            r.Seeds,
		Marginals:        r.Marginals,
		EstSpread:        r.EstSpread,
		NumRRSets:        r.NumRRSets,
		IO:               ioStats(r.IO, r.DecodedHits, r.DecodedMisses),
		PartitionsLoaded: r.PartitionsLoaded,
		Partial:          r.Partial,
		Elapsed:          r.Elapsed,
	}, nil
}

// pin acquires the relevant index handle of every involved shard so a
// scatter query keeps all its indexes alive for its whole duration — each
// shard engine may be hot-swapped or closed concurrently, exactly as with
// single-engine queries. On error every handle already pinned is released.
func (s *Sharded) pin(shards []int, acquire func(*Engine) (*indexHandle, error)) (map[int]*indexHandle, func(), error) {
	handles := make(map[int]*indexHandle, len(shards))
	release := func() {
		for _, h := range handles {
			h.release()
		}
	}
	for _, sh := range shards {
		h, err := acquire(s.engines[sh])
		if err != nil {
			release()
			return nil, nil, err
		}
		handles[sh] = h
	}
	return handles, release, nil
}

// ArtifactBytes implements the cross-node artifact-serving interface
// (remote.Source) so a sharded box still mounts /internal/artifact — and
// answers every request with a diagnosis instead of a bare route 404. A
// fan-out router expects SINGLE-ENGINE backends (node i serving shard i's
// "<index>.s<i>" file): a multi-shard box holds several disjoint keyword
// directories and has no one prelude to serve, so an operator who points
// -router at it gets this message rather than a misleading "serves no RR
// or IRR index".
func (s *Sharded) ArtifactBytes(kind, unit string, topic int, aux int64) ([]byte, int64, error) {
	return nil, 0, fmt.Errorf("kbtim: cross-node artifact serving needs single-engine backends (run one kbtim-serve per shard file, -shards 1); this node runs %d engine shards behind one process", len(s.engines))
}

// BuildShardIndexes builds per-shard index files for a sharded deployment:
// the engine's indexable universe is partitioned by (shards, mode) and each
// shard's subset index is written to pathFor(shard). Replicate mode writes
// the full index to every shard path. kind is "rr" or "irr". Shards left
// with no keywords (possible at tiny universes under hash skew) get no file
// and a nil report.
func (e *Engine) BuildShardIndexes(kind string, shards int, mode ShardMode, pathFor func(shard int) string) ([]*BuildReport, error) {
	m, err := mode.internal()
	if err != nil {
		return nil, fmt.Errorf("kbtim: %w", err)
	}
	sm, err := shardmap.New(shards, m, e.ds.NumTopics())
	if err != nil {
		return nil, fmt.Errorf("kbtim: %w", err)
	}
	build := e.BuildIRRIndexTopics
	switch kind {
	case "irr":
	case "rr":
		build = e.BuildRRIndexTopics
	default:
		return nil, fmt.Errorf("kbtim: unknown index kind %q (want rr or irr)", kind)
	}
	parts := sm.Partition(e.IndexableTopics())
	reports := make([]*BuildReport, shards)
	var written []string
	for sh, part := range parts {
		if len(part) == 0 {
			continue
		}
		path := pathFor(sh)
		rep, err := build(path, part)
		if err != nil {
			// No partial shard sets: a later failure removes the earlier
			// shards' files (matching the single-build convention), so a
			// rerun can never mix shard files from different parameters.
			for _, p := range written {
				os.Remove(p)
			}
			return nil, fmt.Errorf("kbtim: shard %d: %w", sh, err)
		}
		written = append(written, path)
		reports[sh] = rep
	}
	return reports, nil
}

// ShardIndexPath returns the conventional per-shard index filename,
// "<path>.s<shard>" — the naming contract between kbtim-build's sharded
// output and kbtim-serve's sharded open (replicate mode serves one
// unsuffixed file to every shard instead).
func ShardIndexPath(path string, shard int) string {
	return fmt.Sprintf("%s.s%d", path, shard)
}

// OpenShardedIndexes assembles a ready-to-query Sharded deployment over
// per-shard index files: N engines are created over ds with opts (the
// caller splits any global cache budgets per shard beforehand), and shard i
// opens "<path>.s<i>" for each non-empty rrPath/irrPath — the files
// kbtim-build -shards writes — while replicate mode opens the one full
// index at the unsuffixed path on every shard. Shards whose keyword
// partition is empty (possible when hashing a tiny universe) are left
// indexless and are never routed to.
//
// The open is all-or-nothing: any failure closes every engine already
// created — including the ones that had opened their files — so a partial
// failure leaks no file handles, and the error names the shard (with the
// kbtim-build invocation that produces a missing file).
func OpenShardedIndexes(ds *Dataset, opts Options, rrPath, irrPath string, shards int, mode ShardMode, perShardWorkers int) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("kbtim: shard count must be >= 1, got %d", shards)
	}
	if rrPath == "" && irrPath == "" {
		return nil, fmt.Errorf("kbtim: sharded open needs an RR and/or IRR index path")
	}
	engines := make([]*Engine, 0, shards)
	fail := func(err error) (*Sharded, error) {
		for _, e := range engines {
			e.Close()
		}
		return nil, err
	}
	for i := 0; i < shards; i++ {
		eng, err := NewEngine(ds, opts)
		if err != nil {
			return fail(err)
		}
		engines = append(engines, eng)
	}
	topicsBy, err := engines[0].ShardTopics(shards, mode)
	if err != nil {
		return fail(err)
	}
	pathFor := func(path string, shard int) string {
		if mode == ShardReplicate {
			return path
		}
		return ShardIndexPath(path, shard)
	}
	for i, eng := range engines {
		if len(topicsBy[i]) == 0 {
			continue
		}
		if rrPath != "" {
			p := pathFor(rrPath, i)
			if err := eng.OpenRRIndex(p); err != nil {
				return fail(shardOpenErr(p, i, shards, mode, err))
			}
		}
		if irrPath != "" {
			p := pathFor(irrPath, i)
			if err := eng.OpenIRRIndex(p); err != nil {
				return fail(shardOpenErr(p, i, shards, mode, err))
			}
		}
	}
	s, err := NewSharded(engines, mode, perShardWorkers)
	if err != nil {
		return fail(err)
	}
	return s, nil
}

// shardOpenErr decorates a per-shard open failure with the likely fix when
// the file simply is not there.
func shardOpenErr(path string, shard, shards int, mode ShardMode, err error) error {
	if os.IsNotExist(err) && mode != ShardReplicate {
		return fmt.Errorf("kbtim: shard %d index %s missing (build per-shard files with kbtim-build -shards %d -shard-mode %s): %w",
			shard, path, shards, mode, err)
	}
	return fmt.Errorf("kbtim: shard %d: %w", shard, err)
}

// ShardTopics returns the keyword partition a sharded build/serve pair
// agrees on: result[i] is shard i's topic list over this engine's
// indexable universe.
func (e *Engine) ShardTopics(shards int, mode ShardMode) ([][]int, error) {
	m, err := mode.internal()
	if err != nil {
		return nil, fmt.Errorf("kbtim: %w", err)
	}
	sm, err := shardmap.New(shards, m, e.ds.NumTopics())
	if err != nil {
		return nil, fmt.Errorf("kbtim: %w", err)
	}
	return sm.Partition(e.IndexableTopics()), nil
}
